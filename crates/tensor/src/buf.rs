//! Shared, cheaply-cloneable tensor storage with copy-on-write.
//!
//! A [`Buf`] is a handle to an `Arc<Vec<f64>>`. Cloning a buffer (and hence
//! a [`crate::Tensor`]) is one atomic increment — reshapes, tape snapshots,
//! optimizer state and gradient hand-offs all share storage instead of
//! copying it. Mutation goes through [`Buf::make_mut`], which copies the
//! data first if (and only if) another handle is alive, so sharing is never
//! observable: a `Tensor` still behaves like a value.
//!
//! Dropping the last handle does not free the buffer: the whole `Arc` is
//! parked in the thread-local [`crate::bufpool`] and handed to the next
//! same-sized allocation, which is what makes steady-state training steps
//! allocation-free.
//!
//! `Arc` (not `Rc`) is deliberate: scoring fans whole forward passes out
//! across the thread pool, whose closures capture `&ParamStore` / `&Tensor`
//! and therefore require `Sync` storage. The cost difference (atomic vs
//! plain counter bump) is noise next to the copies this removes.

use crate::bufpool;
use std::mem::ManuallyDrop;
use std::ops::Deref;
use std::sync::Arc;

/// Shared tensor storage: a pooled, copy-on-write `f64` buffer.
pub struct Buf {
    // ManuallyDrop so `drop` can move the Arc out and recycle it.
    arc: ManuallyDrop<Arc<Vec<f64>>>,
}

impl Buf {
    /// Wraps caller-provided data (not pooled until it is later freed).
    pub fn from_vec(v: Vec<f64>) -> Self {
        Buf { arc: ManuallyDrop::new(Arc::new(v)) }
    }

    /// A pooled buffer of length `n` holding stale-but-initialized values;
    /// the caller must overwrite every element it exposes.
    pub(crate) fn uninit(n: usize) -> Self {
        Buf { arc: ManuallyDrop::new(bufpool::take(n)) }
    }

    /// A pooled all-zero buffer of length `n`.
    pub(crate) fn zeroed(n: usize) -> Self {
        Buf { arc: ManuallyDrop::new(bufpool::take_zeroed(n)) }
    }

    /// A pooled copy of `src`.
    pub fn copy_of(src: &[f64]) -> Self {
        let mut b = Buf::uninit(src.len());
        b.make_mut().copy_from_slice(src);
        b
    }

    /// The elements.
    pub fn as_slice(&self) -> &[f64] {
        self.arc.as_slice()
    }

    /// Mutable access, copying first if the storage is shared. After this
    /// call the buffer is uniquely owned.
    pub fn make_mut(&mut self) -> &mut [f64] {
        if Arc::get_mut(&mut self.arc).is_none() {
            *self = Buf::copy_of(self.as_slice());
        }
        Arc::get_mut(&mut self.arc).expect("unique after copy-on-write").as_mut_slice()
    }

    /// Extracts the data, copying only if the storage is shared.
    pub fn into_vec(self) -> Vec<f64> {
        let mut this = ManuallyDrop::new(self); // skip the recycling Drop
        // SAFETY: `this` is never touched again.
        let arc = unsafe { ManuallyDrop::take(&mut this.arc) };
        match Arc::try_unwrap(arc) {
            Ok(v) => v,
            Err(shared) => shared.as_slice().to_vec(),
        }
    }

    /// True if this handle is the only owner of the allocation, i.e. a
    /// `make_mut` would write in place without copying. Takes `&mut self` so
    /// the answer cannot be invalidated by a concurrent clone of this handle.
    pub(crate) fn is_unique(&mut self) -> bool {
        Arc::get_mut(&mut self.arc).is_some()
    }

    /// True if both handles share one allocation (diagnostics / tests).
    pub fn ptr_eq(&self, other: &Buf) -> bool {
        Arc::ptr_eq(&self.arc, &other.arc)
    }
}

impl Clone for Buf {
    fn clone(&self) -> Self {
        Buf { arc: ManuallyDrop::new(Arc::clone(&self.arc)) }
    }
}

impl Drop for Buf {
    fn drop(&mut self) {
        // SAFETY: drop runs at most once; `self.arc` is not used afterwards.
        let arc = unsafe { ManuallyDrop::take(&mut self.arc) };
        if Arc::strong_count(&arc) == 1 {
            bufpool::recycle(arc);
        }
    }
}

impl Deref for Buf {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl PartialEq for Buf {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Buf::from_vec(vec![1.0, 2.0]);
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        assert_eq!(b.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn make_mut_copies_when_shared() {
        let mut a = Buf::from_vec(vec![1.0, 2.0]);
        let b = a.clone();
        a.make_mut()[0] = 9.0;
        assert!(!a.ptr_eq(&b), "write must detach shared storage");
        assert_eq!(a.as_slice(), &[9.0, 2.0]);
        assert_eq!(b.as_slice(), &[1.0, 2.0], "other handle unaffected");
    }

    #[test]
    fn make_mut_in_place_when_unique() {
        let mut a = Buf::from_vec(vec![1.0, 2.0]);
        let ptr = a.as_slice().as_ptr();
        a.make_mut()[1] = 5.0;
        assert_eq!(a.as_slice().as_ptr(), ptr, "unique write must not copy");
    }

    #[test]
    fn drop_recycles_unique_buffers() {
        bufpool::clear();
        let a = Buf::uninit(300);
        let ptr = a.as_slice().as_ptr();
        drop(a);
        let b = Buf::uninit(257); // same power-of-two class as 300
        assert_eq!(b.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn shared_drop_does_not_recycle() {
        bufpool::clear();
        let a = Buf::uninit(4000);
        let b = a.clone();
        let ptr = a.as_slice().as_ptr();
        drop(a); // b still alive — must not enter the pool
        let c = Buf::uninit(4000);
        assert_ne!(c.as_slice().as_ptr(), ptr);
        assert_eq!(b.len(), 4000);
    }

    #[test]
    fn into_vec_unique_does_not_copy() {
        let a = Buf::from_vec(vec![1.0, 2.0, 3.0]);
        let ptr = a.as_slice().as_ptr();
        let v = a.into_vec();
        assert_eq!(v.as_ptr(), ptr);
        let s = Buf::from_vec(vec![4.0]);
        let shared = s.clone();
        assert_eq!(shared.into_vec(), vec![4.0]);
        assert_eq!(s.as_slice(), &[4.0]);
    }
}

//! Shape and stride arithmetic for dense row-major tensors.
//!
//! Shapes are stored inline (`[usize; MAX_RANK]` + a rank) so they are
//! `Copy` and shape bookkeeping never touches the allocator — every tensor
//! op clones a shape, and with `Vec`-backed shapes those clones dominated
//! the small-allocation count.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Maximum tensor rank. The TranAD stack needs at most 3 (`[batch, time,
/// feature]`); 4 leaves headroom without bloating every tensor.
pub const MAX_RANK: usize = 4;

/// The shape of a tensor: a list of dimension extents, outermost first.
///
/// Rank-0 (scalar) tensors are represented by an empty dimension list and
/// hold exactly one element.
#[derive(Clone, Copy, Eq)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Creates a shape from dimension extents (panics above [`MAX_RANK`]).
    pub fn new(dims: impl Into<Shape>) -> Self {
        dims.into()
    }

    /// The scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape { dims: [0; MAX_RANK], rank: 0 }
    }

    fn from_dims(d: &[usize]) -> Self {
        assert!(d.len() <= MAX_RANK, "rank {} exceeds MAX_RANK {MAX_RANK}", d.len());
        let mut dims = [0; MAX_RANK];
        dims[..d.len()].copy_from_slice(d);
        Shape { dims, rank: d.len() as u8 }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Extent of dimension `i` (panics if out of range).
    pub fn dim(&self, i: usize) -> usize {
        self.dims()[i]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// Extent of the last dimension; 1 for scalars.
    pub fn last_dim(&self) -> usize {
        self.dims().last().copied().unwrap_or(1)
    }

    /// This shape with the last dimension replaced by `m` (rank >= 1).
    pub fn with_last_dim(mut self, m: usize) -> Shape {
        assert!(self.rank > 0, "with_last_dim on scalar shape");
        self.dims[self.rank as usize - 1] = m;
        self
    }

    /// Row-major strides (in elements); entries past the rank are unused.
    pub fn strides(&self) -> [usize; MAX_RANK] {
        let mut strides = [0; MAX_RANK];
        let mut acc = 1;
        for i in (0..self.rank as usize).rev() {
            strides[i] = acc;
            acc *= self.dims[i];
        }
        strides
    }

    /// Shape with the last two dimensions swapped (requires rank >= 2).
    pub fn transposed(&self) -> Shape {
        assert!(self.rank() >= 2, "transpose requires rank >= 2, got {self}");
        let mut s = *self;
        s.dims.swap(self.rank as usize - 1, self.rank as usize - 2);
        s
    }

    /// Returns the shape that `self` and `other` broadcast to, following
    /// NumPy rules (align trailing dimensions; each pair must be equal or
    /// one of them 1). Returns `None` if incompatible.
    pub fn broadcast_with(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank().max(other.rank());
        let mut out = [0; MAX_RANK];
        for i in 0..rank {
            let a = dim_from_end(self.dims(), i);
            let b = dim_from_end(other.dims(), i);
            out[rank - 1 - i] = match (a, b) {
                (a, b) if a == b => a,
                (1, b) => b,
                (a, 1) => a,
                _ => return None,
            };
        }
        Some(Shape { dims: out, rank: rank as u8 })
    }

    /// True if `self` can broadcast to exactly `target`.
    pub fn broadcasts_to(&self, target: &Shape) -> bool {
        if self.rank() > target.rank() {
            return false;
        }
        (0..target.rank()).all(|i| {
            let a = dim_from_end(self.dims(), i);
            let t = dim_from_end(target.dims(), i);
            a == t || a == 1
        })
    }
}

fn dim_from_end(dims: &[usize], i: usize) -> usize {
    if i < dims.len() {
        dims[dims.len() - 1 - i]
    } else {
        1
    }
}

impl PartialEq for Shape {
    fn eq(&self, other: &Self) -> bool {
        self.dims() == other.dims()
    }
}

impl Hash for Shape {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.dims().hash(state);
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape::from_dims(&v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape::from_dims(v)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape::from_dims(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.last_dim(), 4);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.last_dim(), 1);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(&s.strides()[..3], &[12, 4, 1]);
    }

    #[test]
    fn transpose_swaps_last_two() {
        let s = Shape::new([5, 2, 3]);
        assert_eq!(s.transposed().dims(), &[5, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "transpose requires rank >= 2")]
    fn transpose_rank1_panics() {
        Shape::new([5]).transposed();
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_RANK")]
    fn over_max_rank_panics() {
        Shape::new([2, 2, 2, 2, 2]);
    }

    #[test]
    fn with_last_dim_replaces() {
        let s = Shape::new([4, 7]).with_last_dim(3);
        assert_eq!(s.dims(), &[4, 3]);
    }

    #[test]
    fn eq_ignores_unused_slots() {
        let a = Shape::new([2, 3]);
        let b = Shape::new(vec![2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, Shape::new([2, 3, 1]));
    }

    #[test]
    fn broadcast_equal_shapes() {
        let a = Shape::new([2, 3]);
        assert_eq!(a.broadcast_with(&a).unwrap(), a);
    }

    #[test]
    fn broadcast_prefix_padding() {
        let a = Shape::new([4, 2, 3]);
        let b = Shape::new([3]);
        assert_eq!(a.broadcast_with(&b).unwrap().dims(), &[4, 2, 3]);
        assert!(b.broadcasts_to(&a));
        assert!(!a.broadcasts_to(&b));
    }

    #[test]
    fn broadcast_ones_expand() {
        let a = Shape::new([4, 1, 3]);
        let b = Shape::new([1, 2, 1]);
        assert_eq!(a.broadcast_with(&b).unwrap().dims(), &[4, 2, 3]);
    }

    #[test]
    fn broadcast_incompatible() {
        let a = Shape::new([4, 2]);
        let b = Shape::new([3, 2]);
        assert!(a.broadcast_with(&b).is_none());
    }

    #[test]
    fn broadcast_with_scalar() {
        let a = Shape::new([4, 2]);
        let s = Shape::scalar();
        assert_eq!(a.broadcast_with(&s).unwrap(), a);
        assert!(s.broadcasts_to(&a));
    }
}

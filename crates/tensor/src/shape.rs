//! Shape and stride arithmetic for dense row-major tensors.

use std::fmt;

/// The shape of a tensor: a list of dimension extents, outermost first.
///
/// Rank-0 (scalar) tensors are represented by an empty dimension list and
/// hold exactly one element.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// The scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `i` (panics if out of range).
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent of the last dimension; 1 for scalars.
    pub fn last_dim(&self) -> usize {
        self.0.last().copied().unwrap_or(1)
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1;
        for i in (0..self.0.len()).rev() {
            strides[i] = acc;
            acc *= self.0[i];
        }
        strides
    }

    /// Shape with the last two dimensions swapped (requires rank >= 2).
    pub fn transposed(&self) -> Shape {
        assert!(self.rank() >= 2, "transpose requires rank >= 2, got {self}");
        let mut d = self.0.clone();
        let n = d.len();
        d.swap(n - 1, n - 2);
        Shape(d)
    }

    /// Returns the shape that `self` and `other` broadcast to, following
    /// NumPy rules (align trailing dimensions; each pair must be equal or
    /// one of them 1). Returns `None` if incompatible.
    pub fn broadcast_with(&self, other: &Shape) -> Option<Shape> {
        let rank = self.rank().max(other.rank());
        let mut out = vec![0; rank];
        for i in 0..rank {
            let a = dim_from_end(&self.0, i);
            let b = dim_from_end(&other.0, i);
            out[rank - 1 - i] = match (a, b) {
                (a, b) if a == b => a,
                (1, b) => b,
                (a, 1) => a,
                _ => return None,
            };
        }
        Some(Shape(out))
    }

    /// True if `self` can broadcast to exactly `target`.
    pub fn broadcasts_to(&self, target: &Shape) -> bool {
        if self.rank() > target.rank() {
            return false;
        }
        (0..target.rank()).all(|i| {
            let a = dim_from_end(&self.0, i);
            let t = dim_from_end(target.dims(), i);
            a == t || a == 1
        })
    }
}

fn dim_from_end(dims: &[usize], i: usize) -> usize {
    if i < dims.len() {
        dims[dims.len() - 1 - i]
    } else {
        1
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.last_dim(), 4);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.last_dim(), 1);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn transpose_swaps_last_two() {
        let s = Shape::new([5, 2, 3]);
        assert_eq!(s.transposed().dims(), &[5, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "transpose requires rank >= 2")]
    fn transpose_rank1_panics() {
        Shape::new([5]).transposed();
    }

    #[test]
    fn broadcast_equal_shapes() {
        let a = Shape::new([2, 3]);
        assert_eq!(a.broadcast_with(&a).unwrap(), a);
    }

    #[test]
    fn broadcast_prefix_padding() {
        let a = Shape::new([4, 2, 3]);
        let b = Shape::new([3]);
        assert_eq!(a.broadcast_with(&b).unwrap().dims(), &[4, 2, 3]);
        assert!(b.broadcasts_to(&a));
        assert!(!a.broadcasts_to(&b));
    }

    #[test]
    fn broadcast_ones_expand() {
        let a = Shape::new([4, 1, 3]);
        let b = Shape::new([1, 2, 1]);
        assert_eq!(a.broadcast_with(&b).unwrap().dims(), &[4, 2, 3]);
    }

    #[test]
    fn broadcast_incompatible() {
        let a = Shape::new([4, 2]);
        let b = Shape::new([3, 2]);
        assert!(a.broadcast_with(&b).is_none());
    }

    #[test]
    fn broadcast_with_scalar() {
        let a = Shape::new([4, 2]);
        let s = Shape::scalar();
        assert_eq!(a.broadcast_with(&s).unwrap(), a);
        assert!(s.broadcasts_to(&a));
    }
}

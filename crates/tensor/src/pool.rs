//! A from-scratch, dependency-free thread pool for the numeric hot paths.
//!
//! Design (see DESIGN.md "Threading model"):
//!
//! - A single global pool of persistent `std::thread` workers, created
//!   lazily on the first parallel call. Size = `TRANAD_THREADS` if set,
//!   else `std::thread::available_parallelism()`.
//! - One job runs at a time (submissions serialize on a mutex). A job is a
//!   chunked task queue: `n` task indices drained via an atomic cursor by
//!   the workers *and* the submitting thread, so a pool of size `t` applies
//!   `t` threads to the job, not `t + 1`.
//! - Nested parallel calls (a task that itself calls [`run`]) execute
//!   serially on the calling worker. This keeps e.g. a parallel benchmark
//!   grid whose cells invoke parallel matmuls deadlock-free.
//! - Determinism: every task writes only its own disjoint output and no
//!   reduction is combined across tasks, so results are bitwise identical
//!   for any thread count — `TRANAD_THREADS=1` and `=8` agree exactly.
//! - Panic propagation: a panicking task is caught on the worker; the
//!   submitting call panics after the job drains.
//!
//! Small inputs must not pay dispatch overhead: callers gate on a size
//! cutoff and fall back to plain serial loops (see `Tensor`'s ops).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Lifetime counters for the pool (process-wide, all threads). Cheap to
/// maintain — a few relaxed atomic adds per *job*, never per task — so they
/// stay on even when telemetry is disabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Parallel jobs dispatched through the pool.
    pub jobs: u64,
    /// Tasks contained in those jobs.
    pub tasks: u64,
    /// Tasks executed by worker threads (i.e. stolen from the submitting
    /// thread, which also drains the queue).
    pub stolen: u64,
    /// Tasks that ran inline because the region was serial (one thread,
    /// single task, or nested inside another pool task).
    pub serial_tasks: u64,
}

static JOBS: AtomicU64 = AtomicU64::new(0);
static TASKS: AtomicU64 = AtomicU64::new(0);
static STOLEN: AtomicU64 = AtomicU64::new(0);
static SERIAL_TASKS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the pool's lifetime counters since the last [`reset_counters`].
pub fn counters() -> PoolCounters {
    PoolCounters {
        jobs: JOBS.load(Ordering::Relaxed),
        tasks: TASKS.load(Ordering::Relaxed),
        stolen: STOLEN.load(Ordering::Relaxed),
        serial_tasks: SERIAL_TASKS.load(Ordering::Relaxed),
    }
}

/// Zeroes the pool's lifetime counters.
pub fn reset_counters() {
    JOBS.store(0, Ordering::Relaxed);
    TASKS.store(0, Ordering::Relaxed);
    STOLEN.store(0, Ordering::Relaxed);
    SERIAL_TASKS.store(0, Ordering::Relaxed);
}

/// Emits the pool counters as a `pool.threads` event on `rec` (no-op when
/// the recorder is disabled).
pub fn record_counters(rec: &tranad_telemetry::Recorder) {
    if !rec.enabled() {
        return;
    }
    let c = counters();
    rec.emit("pool.threads", |e| {
        e.u64("threads", current_threads() as u64)
            .u64("jobs", c.jobs)
            .u64("tasks", c.tasks)
            .u64("stolen", c.stolen)
            .u64("serial_tasks", c.serial_tasks);
    });
}

/// One submitted job: a borrowed task closure plus drain-state.
struct Job {
    /// Type- and lifetime-erased pointer to the task closure. Valid for the
    /// whole job because [`run`] does not return until `remaining` hits 0.
    task: *const (dyn Fn(usize) + Sync),
    n: usize,
    cursor: AtomicUsize,
    remaining: AtomicUsize,
    panicked: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `task` points at a `Sync` closure that outlives the job (the
// submitter blocks until every task completes before dropping it).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Drains tasks until the queue is empty; returns how many tasks this
    /// thread executed (feeds the steal counters).
    fn work(&self) -> u64 {
        let mut executed = 0u64;
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return executed;
            }
            executed += 1;
            // SAFETY: see `unsafe impl Send` above.
            let task = unsafe { &*self.task };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i)));
            if result.is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                *self.done.lock().unwrap() = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.done_cv.wait(done).unwrap();
        }
    }
}

/// Slot the workers watch for the next job.
struct Inbox {
    job: Option<Arc<Job>>,
    seq: u64,
    shutdown: bool,
}

struct Pool {
    threads: usize,
    inbox: Mutex<Inbox>,
    inbox_cv: Condvar,
    /// Serializes submissions: one job in flight at a time.
    submit: Mutex<()>,
}

impl Pool {
    fn publish(&self, job: Arc<Job>) {
        let mut inbox = self.inbox.lock().unwrap();
        inbox.job = Some(job);
        inbox.seq += 1;
        self.inbox_cv.notify_all();
    }

    fn retire(&self) {
        self.inbox.lock().unwrap().job = None;
    }

    fn worker_loop(&self) {
        IN_POOL.with(|f| f.set(true));
        let mut last_seq = 0u64;
        loop {
            let job = {
                let mut inbox = self.inbox.lock().unwrap();
                loop {
                    if inbox.shutdown {
                        return;
                    }
                    if inbox.seq != last_seq {
                        last_seq = inbox.seq;
                        break;
                    }
                    inbox = self.inbox_cv.wait(inbox).unwrap();
                }
                inbox.job.clone()
            };
            if let Some(job) = job {
                let stolen = job.work();
                if stolen > 0 {
                    STOLEN.fetch_add(stolen, Ordering::Relaxed);
                }
            }
        }
    }
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();

thread_local! {
    /// True on pool workers and on a thread currently executing pool tasks:
    /// nested `run` calls go serial instead of re-entering the pool.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Per-thread override installed by [`with_threads`] (tests, scoped
    /// serial sections).
    static THREAD_LIMIT: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

fn env_threads() -> usize {
    match std::env::var("TRANAD_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| panic!("TRANAD_THREADS must be a positive integer, got {v:?}")),
        Err(_) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

fn global() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = env_threads();
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            threads,
            inbox: Mutex::new(Inbox { job: None, seq: 0, shutdown: false }),
            inbox_cv: Condvar::new(),
            submit: Mutex::new(()),
        }));
        // The submitter participates in each job, so `threads - 1` workers
        // give `threads` active threads per job.
        for i in 1..threads {
            std::thread::Builder::new()
                .name(format!("tranad-pool-{i}"))
                .spawn(move || pool.worker_loop())
                .expect("spawn pool worker");
        }
        pool
    })
}

/// The number of threads a parallel region will use right now: the
/// [`with_threads`] override if one is active, else `TRANAD_THREADS`, else
/// the machine's available parallelism.
pub fn current_threads() -> usize {
    if IN_POOL.with(|f| f.get()) {
        return 1;
    }
    match THREAD_LIMIT.with(|l| l.get()) {
        Some(n) => n.min(global().threads).max(1),
        None => global().threads,
    }
}

/// Runs `f` with parallel regions on this thread capped at `n` threads
/// (`n = 1` forces fully serial execution). Used by the determinism tests
/// and by callers that want a serial section without touching the
/// environment.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = THREAD_LIMIT.with(|l| l.replace(Some(n.max(1))));
    let result = f();
    THREAD_LIMIT.with(|l| l.set(prev));
    result
}

/// Executes `task(0), task(1), …, task(n - 1)` across the pool, returning
/// when all have finished. Tasks must write disjoint outputs. Panics if any
/// task panicked. Serial when the pool has one thread, when `n < 2`, or
/// when called from inside another pool task (nesting).
pub fn run(n: usize, task: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    // One `pool.run` span per region, opened on the submitting thread and
    // emitted serially on both schedules. Task bodies run span-suppressed:
    // per-task spans would differ between the serial and parallel paths
    // (and, on workers, race on emission), breaking the guarantee that a
    // TRANAD_THREADS=1 trace equals a TRANAD_THREADS=8 trace.
    let _span = tranad_telemetry::span::enter("pool.run");
    if n == 1 || current_threads() <= 1 {
        SERIAL_TASKS.fetch_add(n as u64, Ordering::Relaxed);
        tranad_telemetry::span::suppressed(|| {
            for i in 0..n {
                task(i);
            }
        });
        return;
    }
    let pool = global();
    let _guard = pool.submit.lock().unwrap();
    // SAFETY: erase the borrow's lifetime; we block on `job.wait()` below,
    // so the closure outlives every use by the workers.
    let task: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    let job = Arc::new(Job {
        task,
        n,
        cursor: AtomicUsize::new(0),
        remaining: AtomicUsize::new(n),
        panicked: AtomicBool::new(false),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    JOBS.fetch_add(1, Ordering::Relaxed);
    TASKS.fetch_add(n as u64, Ordering::Relaxed);
    pool.publish(job.clone());
    // Participate; mark this thread as in-pool so nested calls go serial.
    let was_in_pool = IN_POOL.with(|f| f.replace(true));
    tranad_telemetry::span::suppressed(|| job.work());
    IN_POOL.with(|f| f.set(was_in_pool));
    job.wait();
    pool.retire();
    if job.panicked.load(Ordering::Relaxed) {
        panic!("a tranad-tensor pool task panicked");
    }
}

/// Splits `0..n` into contiguous chunks of at least `grain` items and runs
/// `f(start, end)` for each across the pool. Chunk boundaries depend only
/// on `n` and `grain` — never on the thread count — so any per-chunk
/// sequential computation is reproducible across pool sizes.
pub fn parallel_ranges(n: usize, grain: usize, f: impl Fn(usize, usize) + Sync) {
    if n == 0 {
        return;
    }
    let grain = grain.max(1);
    let chunks = n.div_ceil(grain);
    run(chunks, &|c| {
        let start = c * grain;
        f(start, (start + grain).min(n));
    });
}

/// Rounds `grain` up to a whole multiple of `tile` (at least one tile).
/// Row-block partitions aligned this way always split on micro-kernel tile
/// boundaries, so the parallel chunks drive the exact same sequence of
/// full and ragged-edge tiles as one serial sweep over the whole output.
pub fn aligned_grain(grain: usize, tile: usize) -> usize {
    let tile = tile.max(1);
    grain.max(1).div_ceil(tile) * tile
}

/// Runs `f(start_index, chunk)` over `chunk_len`-sized mutable chunks of
/// `out` across the pool (the last chunk may be shorter). The chunks are
/// disjoint, so each task owns its slice.
pub fn parallel_chunks_mut<T: Send>(
    out: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let chunk_len = chunk_len.max(1);
    if out.len() <= chunk_len {
        if !out.is_empty() {
            f(0, out);
        }
        return;
    }
    // A slot per chunk: each task takes exclusive ownership of its chunk by
    // emptying the Option, so the `&mut` never aliases across tasks.
    type Slot<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;
    let slots: Vec<Slot<'_, T>> = out
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(i, c)| Mutex::new(Some((i * chunk_len, c))))
        .collect();
    run(slots.len(), &|i| {
        let (start, chunk) = slots[i].lock().unwrap().take().expect("chunk taken twice");
        f(start, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_zero_tasks_is_a_noop() {
        run(0, &|_| panic!("must not be called"));
    }

    #[test]
    fn run_single_task_executes_inline() {
        let hit = AtomicUsize::new(0);
        run(1, &|i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_visits_every_index_once() {
        let counts: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        run(97, &|i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn panic_in_task_propagates() {
        let result = std::panic::catch_unwind(|| {
            run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
        // The pool must survive a panicked job.
        let sum = AtomicUsize::new(0);
        run(8, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn nested_run_does_not_deadlock() {
        let total = AtomicUsize::new(0);
        run(4, &|_| {
            run(4, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn with_threads_one_forces_serial() {
        with_threads(1, || {
            assert_eq!(current_threads(), 1);
            let sum = AtomicUsize::new(0);
            run(16, &|i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 120);
        });
    }

    #[test]
    fn parallel_ranges_covers_exactly() {
        let flags: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
        parallel_ranges(103, 10, |start, end| {
            for f in &flags[start..end] {
                f.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_chunks_mut_writes_disjoint_slices() {
        let mut out = vec![0usize; 100];
        parallel_chunks_mut(&mut out, 7, |start, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = start + off;
            }
        });
        let expect: Vec<usize> = (0..100).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn aligned_grain_rounds_up_to_tile_multiples() {
        assert_eq!(aligned_grain(1, 4), 4);
        assert_eq!(aligned_grain(4, 4), 4);
        assert_eq!(aligned_grain(5, 4), 8);
        assert_eq!(aligned_grain(64, 4), 64);
        assert_eq!(aligned_grain(0, 4), 4);
        assert_eq!(aligned_grain(7, 0), 7);
    }

    #[test]
    fn parallel_chunks_mut_empty_input() {
        let mut out: Vec<usize> = Vec::new();
        parallel_chunks_mut(&mut out, 4, |_, _| panic!("no chunks expected"));
    }
}

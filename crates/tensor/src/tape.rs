//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every differentiable operation eagerly; calling
//! [`Var::backward`] walks the tape in reverse, accumulating gradients into
//! every node. A fresh tape is intended per training step — parameters live
//! outside the tape and are re-introduced as leaves each step.

use crate::shape::Shape;
use crate::tensor::{Act, Tensor};
use std::cell::RefCell;
use std::rc::Rc;

/// Recorded operation, holding input node ids plus whatever context the
/// backward pass needs.
enum Op {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
    Matmul(usize, usize),
    Transpose(usize),
    Reshape(usize),
    Neg(usize),
    Scale(usize, f64),
    AddScalar(usize),
    Exp(usize),
    Ln(usize),
    Sqrt(usize),
    Square(usize),
    Abs(usize),
    Sigmoid(usize),
    Tanh(usize),
    Relu(usize),
    SoftmaxLast(usize),
    SumAll(usize),
    MeanAll(usize),
    SumLast(usize),
    MeanLast(usize),
    LayerNormLast { x: usize, inv_std: Tensor },
    ConcatLast(Vec<usize>),
    NarrowLast { x: usize, start: usize },
    /// Fused `act(x @ w + b)`: one node where the unfused chain records
    /// three (matmul, broadcast add, activation).
    LinearAct { x: usize, w: usize, b: Option<usize>, act: Act },
    /// Fused `layer_norm(x) * gamma + beta`: one node instead of three.
    /// `normed` is the pre-affine normalized value the backward pass needs.
    LayerNormAffine { x: usize, gamma: usize, beta: usize, normed: Tensor, inv_std: Tensor },
    /// Fused `(a @ b^T) * scale` (attention scores): one node instead of
    /// three (transpose, matmul, scale).
    MatmulTScale { a: usize, b: usize, scale: f64 },
}

/// Span name for an op's backward rule, or `None` for ops too cheap to be
/// worth a trace line (elementwise, reshapes, reductions). The list mirrors
/// the forward-instrumented ops so `trace-report` can pair `op.*` with
/// `bwd.*` rows.
fn backward_span(op: &Op) -> Option<&'static str> {
    Some(match op {
        Op::Matmul(..) => "bwd.matmul",
        Op::SoftmaxLast(..) => "bwd.softmax",
        Op::LayerNormLast { .. } => "bwd.layer_norm",
        Op::ConcatLast(..) => "bwd.concat",
        Op::LinearAct { .. } => "bwd.linear_act",
        Op::LayerNormAffine { .. } => "bwd.layer_norm_affine",
        Op::MatmulTScale { .. } => "bwd.matmul_t_scale",
        _ => return None,
    })
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

#[derive(Default)]
struct TapeInner {
    nodes: Vec<Node>,
}

/// A recording tape. Cheap to clone (shared handle).
#[derive(Clone, Default)]
pub struct Tape {
    inner: Rc<RefCell<TapeInner>>,
}

/// A differentiable value: a handle to one node on a [`Tape`].
#[derive(Clone)]
pub struct Var {
    tape: Tape,
    id: usize,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Introduces `t` as a leaf (input or parameter) on the tape.
    pub fn leaf(&self, t: Tensor) -> Var {
        self.push(t, Op::Leaf)
    }

    fn push(&self, value: Tensor, op: Op) -> Var {
        let mut inner = self.inner.borrow_mut();
        let id = inner.nodes.len();
        inner.nodes.push(Node { value, grad: None, op });
        Var { tape: self.clone(), id }
    }

    /// A handle to a node's value. Storage is shared (see `crate::buf`), so
    /// this is an O(1) reference-count bump, not a copy.
    fn value_of(&self, id: usize) -> Tensor {
        self.inner.borrow().nodes[id].value.clone()
    }

    fn accumulate(&self, id: usize, g: Tensor) {
        let mut inner = self.inner.borrow_mut();
        let node = &mut inner.nodes[id];
        debug_assert_eq!(
            g.shape(),
            node.value.shape(),
            "gradient shape mismatch at node {id}"
        );
        match &mut node.grad {
            // In place: the accumulator is uniquely owned while backward is
            // still upstream of this node (copy-on-write guards the rest).
            Some(acc) => acc.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }
}

impl Var {
    /// The tape this variable is recorded on.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// This variable's current value: an O(1) shared-storage handle, not a
    /// copy (tensors are copy-on-write).
    pub fn value(&self) -> Tensor {
        self.tape.value_of(self.id)
    }

    /// The shape of this variable's value.
    pub fn shape(&self) -> Shape {
        *self.tape.inner.borrow().nodes[self.id].value.shape()
    }

    /// The accumulated gradient (zeros if backward never reached this node).
    pub fn grad(&self) -> Tensor {
        let inner = self.tape.inner.borrow();
        let node = &inner.nodes[self.id];
        node.grad
            .clone()
            .unwrap_or_else(|| Tensor::zeros(*node.value.shape()))
    }

    fn same_tape(&self, other: &Var) {
        assert!(
            Rc::ptr_eq(&self.tape.inner, &other.tape.inner),
            "variables belong to different tapes"
        );
    }

    fn unary(&self, value: Tensor, op: Op) -> Var {
        self.tape.push(value, op)
    }

    // ---- arithmetic --------------------------------------------------------

    /// Elementwise (broadcasting) addition.
    pub fn add(&self, other: &Var) -> Var {
        self.same_tape(other);
        let v = self.value().broadcast_zip(&other.value(), |a, b| a + b);
        self.tape.push(v, Op::Add(self.id, other.id))
    }

    /// Elementwise (broadcasting) subtraction.
    pub fn sub(&self, other: &Var) -> Var {
        self.same_tape(other);
        let v = self.value().broadcast_zip(&other.value(), |a, b| a - b);
        self.tape.push(v, Op::Sub(self.id, other.id))
    }

    /// Elementwise (broadcasting) multiplication.
    pub fn mul(&self, other: &Var) -> Var {
        self.same_tape(other);
        let v = self.value().broadcast_zip(&other.value(), |a, b| a * b);
        self.tape.push(v, Op::Mul(self.id, other.id))
    }

    /// Elementwise (broadcasting) division.
    pub fn div(&self, other: &Var) -> Var {
        self.same_tape(other);
        let v = self.value().broadcast_zip(&other.value(), |a, b| a / b);
        self.tape.push(v, Op::Div(self.id, other.id))
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        let v = self.value().map(|x| -x);
        self.unary(v, Op::Neg(self.id))
    }

    /// Multiplication by a constant.
    pub fn scale(&self, c: f64) -> Var {
        let v = self.value().map(|x| x * c);
        self.unary(v, Op::Scale(self.id, c))
    }

    /// Addition of a constant.
    pub fn add_scalar(&self, c: f64) -> Var {
        let v = self.value().map(|x| x + c);
        self.unary(v, Op::AddScalar(self.id))
    }

    // ---- linear algebra ----------------------------------------------------

    /// Matrix product (see [`Tensor::matmul`] for supported rank pairs).
    pub fn matmul(&self, other: &Var) -> Var {
        self.same_tape(other);
        let _s = tranad_telemetry::span::enter("op.matmul");
        let v = self.value().matmul(&other.value());
        self.tape.push(v, Op::Matmul(self.id, other.id))
    }

    /// Swap of the last two dimensions.
    pub fn transpose(&self) -> Var {
        let v = self.value().transpose();
        self.unary(v, Op::Transpose(self.id))
    }

    /// Shape reinterpretation (element count preserved).
    pub fn reshape(&self, shape: impl Into<Shape>) -> Var {
        let v = self.value().reshape(shape);
        self.unary(v, Op::Reshape(self.id))
    }

    // ---- nonlinearities ----------------------------------------------------

    /// Elementwise `exp`.
    pub fn exp(&self) -> Var {
        let v = self.value().map(f64::exp);
        self.unary(v, Op::Exp(self.id))
    }

    /// Elementwise natural log.
    pub fn ln(&self) -> Var {
        let v = self.value().map(f64::ln);
        self.unary(v, Op::Ln(self.id))
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Var {
        let v = self.value().map(f64::sqrt);
        self.unary(v, Op::Sqrt(self.id))
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        let v = self.value().map(|x| x * x);
        self.unary(v, Op::Square(self.id))
    }

    /// Elementwise absolute value (subgradient 0 at 0).
    pub fn abs(&self) -> Var {
        let v = self.value().map(f64::abs);
        self.unary(v, Op::Abs(self.id))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let v = self.value().map(|x| 1.0 / (1.0 + (-x).exp()));
        self.unary(v, Op::Sigmoid(self.id))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let v = self.value().map(f64::tanh);
        self.unary(v, Op::Tanh(self.id))
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let v = self.value().map(|x| x.max(0.0));
        self.unary(v, Op::Relu(self.id))
    }

    /// Softmax over the last dimension.
    pub fn softmax_last(&self) -> Var {
        let _s = tranad_telemetry::span::enter("op.softmax");
        let v = self.value().softmax_last();
        self.unary(v, Op::SoftmaxLast(self.id))
    }

    /// Layer normalization over the last dimension (no affine; compose with
    /// `mul`/`add` for scale and shift, or use the fused
    /// [`Var::layer_norm_affine`]).
    pub fn layer_norm_last(&self, eps: f64) -> Var {
        let _s = tranad_telemetry::span::enter("op.layer_norm");
        let (normed, inv_std) = self.value().layer_norm_parts(eps);
        self.tape.push(normed, Op::LayerNormLast { x: self.id, inv_std })
    }

    // ---- fused ops ---------------------------------------------------------

    /// Fused `act(self @ w + b)` — one tape node and one output buffer where
    /// the unfused chain records three nodes. Numerically identical
    /// (bitwise) to `self.matmul(w).add(b)` followed by the activation.
    pub fn linear_act(&self, w: &Var, b: Option<&Var>, act: Act) -> Var {
        self.same_tape(w);
        if let Some(b) = b {
            self.same_tape(b);
        }
        let _s = tranad_telemetry::span::enter("op.linear_act");
        let v = {
            let inner = self.tape.inner.borrow();
            let bv = b.map(|b| &inner.nodes[b.id].value);
            inner.nodes[self.id].value.matmul_bias_act(&inner.nodes[w.id].value, bv, act)
        };
        self.tape.push(v, Op::LinearAct { x: self.id, w: w.id, b: b.map(|b| b.id), act })
    }

    /// Fused affine layer norm `layer_norm(self) * gamma + beta` — one tape
    /// node instead of three, bitwise identical to the unfused chain.
    pub fn layer_norm_affine(&self, gamma: &Var, beta: &Var, eps: f64) -> Var {
        self.same_tape(gamma);
        self.same_tape(beta);
        let _s = tranad_telemetry::span::enter("op.layer_norm_affine");
        let (v, normed, inv_std) = {
            let inner = self.tape.inner.borrow();
            let (normed, inv_std) = inner.nodes[self.id].value.layer_norm_parts(eps);
            let v = normed
                .scale_shift_last(&inner.nodes[gamma.id].value, &inner.nodes[beta.id].value);
            (v, normed, inv_std)
        };
        self.tape.push(
            v,
            Op::LayerNormAffine { x: self.id, gamma: gamma.id, beta: beta.id, normed, inv_std },
        )
    }

    /// Fused `(self @ other^T) * scale` (attention scores) — one tape node
    /// instead of three, without materializing the transpose; bitwise
    /// identical to `self.matmul(&other.transpose()).scale(scale)`.
    pub fn matmul_t_scaled(&self, other: &Var, scale: f64) -> Var {
        self.same_tape(other);
        let _s = tranad_telemetry::span::enter("op.matmul_t_scale");
        let v = {
            let inner = self.tape.inner.borrow();
            inner.nodes[self.id].value.matmul_nt_scaled(&inner.nodes[other.id].value, scale)
        };
        self.tape.push(v, Op::MatmulTScale { a: self.id, b: other.id, scale })
    }

    // ---- reductions & reshuffles -------------------------------------------

    /// Sum of all elements (rank-0 result).
    pub fn sum_all(&self) -> Var {
        let v = Tensor::scalar(self.value().sum());
        self.unary(v, Op::SumAll(self.id))
    }

    /// Mean of all elements (rank-0 result).
    pub fn mean_all(&self) -> Var {
        let v = Tensor::scalar(self.value().mean());
        self.unary(v, Op::MeanAll(self.id))
    }

    /// Sum over the last dimension, dropping it.
    pub fn sum_last(&self) -> Var {
        let v = self.value().sum_last();
        self.unary(v, Op::SumLast(self.id))
    }

    /// Mean over the last dimension, dropping it.
    pub fn mean_last(&self) -> Var {
        let v = self.value().mean_last();
        self.unary(v, Op::MeanLast(self.id))
    }

    /// Concatenation along the last dimension.
    pub fn concat_last(parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat of zero vars");
        let tape = parts[0].tape.clone();
        for p in parts {
            parts[0].same_tape(p);
        }
        let _s = tranad_telemetry::span::enter("op.concat");
        let values: Vec<Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let v = Tensor::concat_last(&refs);
        tape.push(v, Op::ConcatLast(parts.iter().map(|p| p.id).collect()))
    }

    /// `len` columns of the last dimension starting at `start`.
    pub fn narrow_last(&self, start: usize, len: usize) -> Var {
        let v = self.value().narrow_last(start, len);
        self.unary(v, Op::NarrowLast { x: self.id, start })
    }

    /// Mean squared error against `target`: `mean((self - target)^2)`.
    pub fn mse(&self, target: &Var) -> Var {
        self.sub(target).square().mean_all()
    }

    // ---- backward ----------------------------------------------------------

    /// Runs reverse-mode differentiation from this node, seeding its gradient
    /// with ones. Gradients accumulate into every reachable node.
    pub fn backward(&self) {
        let _s = tranad_telemetry::span::enter("tape.backward");
        let seed = Tensor::ones(self.shape());
        self.tape.accumulate(self.id, seed);
        let n = self.tape.len();
        for id in (0..=self.id.min(n - 1)).rev() {
            let grad = {
                let inner = self.tape.inner.borrow();
                match &inner.nodes[id].grad {
                    None => continue,
                    Some(g) => g.clone(),
                }
            };
            self.propagate(id, grad);
        }
    }

    fn propagate(&self, id: usize, g: Tensor) {
        // Per-op backward spans only for the ops worth attributing (the
        // same set as the forward `op.*` spans); gated on `active()` so
        // the untraced hot loop skips the extra tape borrow entirely.
        let _span = if tranad_telemetry::span::active() {
            let inner = self.tape.inner.borrow();
            backward_span(&inner.nodes[id].op).map(tranad_telemetry::span::enter)
        } else {
            None
        };
        // Clone whatever the backward rule needs while holding the borrow,
        // then release it before accumulating into inputs.
        enum Rule {
            None,
            One { to: usize, g: Tensor },
            Two { a: usize, ga: Tensor, b: usize, gb: Tensor },
            Many(Vec<(usize, Tensor)>),
        }
        let rule = {
            let inner = self.tape.inner.borrow();
            let node = &inner.nodes[id];
            let val = |i: usize| inner.nodes[i].value.clone();
            match &node.op {
                Op::Leaf => Rule::None,
                Op::Add(a, b) => {
                    let ga = g.reduce_to_shape(val(*a).shape());
                    let gb = g.reduce_to_shape(val(*b).shape());
                    Rule::Two { a: *a, ga, b: *b, gb }
                }
                Op::Sub(a, b) => {
                    let ga = g.reduce_to_shape(val(*a).shape());
                    let gb = g.map(|x| -x).reduce_to_shape(val(*b).shape());
                    Rule::Two { a: *a, ga, b: *b, gb }
                }
                Op::Mul(a, b) => {
                    let (av, bv) = (val(*a), val(*b));
                    let ga = g.broadcast_zip(&bv, |x, y| x * y).reduce_to_shape(av.shape());
                    let gb = g.broadcast_zip(&av, |x, y| x * y).reduce_to_shape(bv.shape());
                    Rule::Two { a: *a, ga, b: *b, gb }
                }
                Op::Div(a, b) => {
                    let (av, bv) = (val(*a), val(*b));
                    let ga = g.broadcast_zip(&bv, |x, y| x / y).reduce_to_shape(av.shape());
                    // d/db (a/b) = -a / b^2
                    let gb = g
                        .broadcast_zip(&av, |x, y| x * y)
                        .broadcast_zip(&bv, |x, y| -x / (y * y))
                        .reduce_to_shape(bv.shape());
                    Rule::Two { a: *a, ga, b: *b, gb }
                }
                Op::Matmul(a, b) => {
                    let (av, bv) = (val(*a), val(*b));
                    let (ga, gb) = matmul_backward(&g, &av, &bv);
                    Rule::Two { a: *a, ga, b: *b, gb }
                }
                Op::Transpose(a) => Rule::One { to: *a, g: g.transpose() },
                Op::Reshape(a) => {
                    let s = *val(*a).shape();
                    Rule::One { to: *a, g: g.reshape(s) }
                }
                Op::Neg(a) => Rule::One { to: *a, g: g.map(|x| -x) },
                Op::Scale(a, c) => {
                    let c = *c;
                    Rule::One { to: *a, g: g.map(|x| x * c) }
                }
                Op::AddScalar(a) => Rule::One { to: *a, g },
                Op::Exp(a) => Rule::One { to: *a, g: g.zip(&node.value, |x, y| x * y) },
                Op::Ln(a) => Rule::One { to: *a, g: g.zip(&val(*a), |x, y| x / y) },
                Op::Sqrt(a) => Rule::One { to: *a, g: g.zip(&node.value, |x, y| 0.5 * x / y) },
                Op::Square(a) => Rule::One { to: *a, g: g.zip(&val(*a), |x, y| 2.0 * x * y) },
                Op::Abs(a) => Rule::One {
                    to: *a,
                    g: g.zip(&val(*a), |x, y| x * y.signum() * f64::from(y != 0.0)),
                },
                Op::Sigmoid(a) => Rule::One {
                    to: *a,
                    g: g.zip(&node.value, |x, y| x * y * (1.0 - y)),
                },
                Op::Tanh(a) => Rule::One {
                    to: *a,
                    g: g.zip(&node.value, |x, y| x * (1.0 - y * y)),
                },
                Op::Relu(a) => Rule::One {
                    to: *a,
                    g: g.zip(&val(*a), |x, y| if y > 0.0 { x } else { 0.0 }),
                },
                Op::SoftmaxLast(a) => {
                    Rule::One { to: *a, g: softmax_backward(&g, &node.value) }
                }
                Op::SumAll(a) => {
                    let s = *val(*a).shape();
                    Rule::One { to: *a, g: Tensor::full(s, g.item()) }
                }
                Op::MeanAll(a) => {
                    let s = *val(*a).shape();
                    let n = s.numel() as f64;
                    Rule::One { to: *a, g: Tensor::full(s, g.item() / n) }
                }
                Op::SumLast(a) => {
                    let s = *val(*a).shape();
                    Rule::One { to: *a, g: expand_last(&g, &s, 1.0) }
                }
                Op::MeanLast(a) => {
                    let s = *val(*a).shape();
                    let m = s.last_dim() as f64;
                    Rule::One { to: *a, g: expand_last(&g, &s, 1.0 / m) }
                }
                Op::LayerNormLast { x, inv_std } => {
                    Rule::One {
                        to: *x,
                        g: layer_norm_backward(&g, &node.value, inv_std),
                    }
                }
                Op::ConcatLast(parts) => {
                    let mut grads = Vec::with_capacity(parts.len());
                    let mut start = 0;
                    for &p in parts {
                        let w = val(p).shape().last_dim();
                        grads.push((p, g.narrow_last(start, w)));
                        start += w;
                    }
                    Rule::Many(grads)
                }
                Op::NarrowLast { x, start } => {
                    let s = *val(*x).shape();
                    Rule::One { to: *x, g: scatter_last(&g, &s, *start) }
                }
                Op::LinearAct { x, w, b, act } => {
                    // dpre = g ∘ act'(y), with act' read off the output y;
                    // then the plain matmul backward on the pre-activation.
                    // Expressions (and evaluation order) match the unfused
                    // Relu/Sigmoid/Tanh backward rules bitwise.
                    let dpre = match act {
                        Act::Identity => g.clone(),
                        Act::Relu => {
                            g.zip(&node.value, |x, y| if y > 0.0 { x } else { 0.0 })
                        }
                        Act::Sigmoid => g.zip(&node.value, |x, y| x * y * (1.0 - y)),
                        Act::Tanh => g.zip(&node.value, |x, y| x * (1.0 - y * y)),
                    };
                    let (xv, wv) = (val(*x), val(*w));
                    let (gx, gw) = matmul_backward(&dpre, &xv, &wv);
                    let mut grads = vec![(*x, gx), (*w, gw)];
                    if let Some(bid) = b {
                        let bs = *val(*bid).shape();
                        grads.push((*bid, dpre.reduce_to_shape(&bs)));
                    }
                    Rule::Many(grads)
                }
                Op::LayerNormAffine { x, gamma, beta, normed, inv_std } => {
                    // Mirrors the unfused add/mul/layer-norm backward chain
                    // term for term (same reduction order — bitwise equal).
                    let gv = val(*gamma);
                    let gbeta = g.reduce_to_shape(val(*beta).shape());
                    let ggamma = g.broadcast_zip(normed, |a, b| a * b).reduce_to_shape(gv.shape());
                    let gn = g.broadcast_zip(&gv, |a, b| a * b);
                    let gx = layer_norm_backward(&gn, normed, inv_std);
                    Rule::Many(vec![(*x, gx), (*gamma, ggamma), (*beta, gbeta)])
                }
                Op::MatmulTScale { a, b, scale } => {
                    let (av, bv) = (val(*a), val(*b));
                    let c = *scale;
                    let gs = g.map(|x| x * c);
                    let ga = gs.matmul(&bv);
                    // gs^T @ a without materializing the transpose (same
                    // ascending summation order — bitwise identical).
                    let gb = gs.matmul_tn(&av);
                    Rule::Two { a: *a, ga, b: *b, gb }
                }
            }
        };
        match rule {
            Rule::None => {}
            Rule::One { to, g } => self.tape.accumulate(to, g),
            Rule::Two { a, ga, b, gb } => {
                self.tape.accumulate(a, ga);
                self.tape.accumulate(b, gb);
            }
            Rule::Many(gs) => {
                for (to, g) in gs {
                    self.tape.accumulate(to, g);
                }
            }
        }
    }
}

/// dA, dB for `out = A @ B` given `g = dOut`.
///
/// Runs on the transpose-free tiled kernels: `g @ B^T` via
/// [`Tensor::matmul_nt_scaled`] with scale 1 (`x * 1.0` is a bitwise
/// identity) and `A^T @ g` via [`Tensor::matmul_tn`]. Both accumulate in
/// the same index order as the materialized-transpose chain, so gradients
/// are bitwise identical to the old `transpose()`-based rules without the
/// transpose allocations.
fn matmul_backward(g: &Tensor, a: &Tensor, b: &Tensor) -> (Tensor, Tensor) {
    match (a.shape().rank(), b.shape().rank()) {
        (2, 2) => (g.matmul_nt_scaled(b, 1.0), a.matmul_tn(g)),
        (3, 2) => {
            // Shared rhs: flatten the batch so `g @ B^T` runs as one 2-d
            // nt product against the shared weight (reshape is O(1)).
            let (bb, n, m) = (g.shape().dim(0), g.shape().dim(1), g.shape().dim(2));
            let kk = a.shape().dim(2);
            let ga = g.reshape([bb * n, m]).matmul_nt_scaled(b, 1.0).reshape([bb, n, kk]);
            let gb_batched = a.matmul_tn(g); // [b, k, m]
            (ga, sum_axis0(&gb_batched))
        }
        (3, 3) => (g.matmul_nt_scaled(b, 1.0), a.matmul_tn(g)),
        _ => unreachable!("matmul forward validated ranks"),
    }
}

/// Sums a rank-3 tensor over its first axis, producing rank-2.
fn sum_axis0(t: &Tensor) -> Tensor {
    assert_eq!(t.shape().rank(), 3);
    let (b, n, m) = (t.shape().dim(0), t.shape().dim(1), t.shape().dim(2));
    let mut out = Tensor::zeros([n, m]);
    let od = out.data_mut();
    for bi in 0..b {
        for (o, &v) in od.iter_mut().zip(&t.data()[bi * n * m..(bi + 1) * n * m]) {
            *o += v;
        }
    }
    out
}

/// Softmax jacobian-vector product over the last dim:
/// `dx = (g - sum(g*y)) * y` rowwise.
fn softmax_backward(g: &Tensor, y: &Tensor) -> Tensor {
    let m = y.shape().last_dim();
    let rows = y.numel() / m;
    let mut out = Tensor::uninit(*y.shape());
    let od = out.data_mut();
    for r in 0..rows {
        let gr = &g.data()[r * m..(r + 1) * m];
        let yr = &y.data()[r * m..(r + 1) * m];
        let dot: f64 = gr.iter().zip(yr).map(|(&a, &b)| a * b).sum();
        for ((o, &gi), &yi) in od[r * m..(r + 1) * m].iter_mut().zip(gr).zip(yr) {
            *o = (gi - dot) * yi;
        }
    }
    out
}

/// Layer-norm backward over the last dim given normalized output `y` and the
/// per-row inverse standard deviation.
fn layer_norm_backward(g: &Tensor, y: &Tensor, inv_std: &Tensor) -> Tensor {
    let m = y.shape().last_dim();
    let rows = y.numel() / m;
    let mut out = Tensor::uninit(*y.shape());
    let od = out.data_mut();
    for r in 0..rows {
        let gr = &g.data()[r * m..(r + 1) * m];
        let yr = &y.data()[r * m..(r + 1) * m];
        let is = inv_std.data()[r];
        let mean_g: f64 = gr.iter().sum::<f64>() / m as f64;
        let mean_gy: f64 = gr.iter().zip(yr).map(|(&a, &b)| a * b).sum::<f64>() / m as f64;
        for ((o, &gi), &yi) in od[r * m..(r + 1) * m].iter_mut().zip(gr).zip(yr) {
            *o = is * (gi - mean_g - yi * mean_gy);
        }
    }
    out
}

/// Broadcasts a reduced-last-dim gradient back over the last dimension of
/// `target`, scaling each copy by `scale`.
fn expand_last(g: &Tensor, target: &Shape, scale: f64) -> Tensor {
    let m = target.last_dim();
    let rows = target.numel() / m;
    assert_eq!(g.numel(), rows, "expand_last row mismatch");
    let mut out = Tensor::uninit(*target);
    let od = out.data_mut();
    for r in 0..rows {
        let v = g.data()[r] * scale;
        for o in &mut od[r * m..(r + 1) * m] {
            *o = v;
        }
    }
    out
}

/// Scatters a narrowed gradient back into a zero tensor of shape `target`.
fn scatter_last(g: &Tensor, target: &Shape, start: usize) -> Tensor {
    let m = target.last_dim();
    let len = g.shape().last_dim();
    let rows = target.numel() / m;
    let mut out = Tensor::zeros(*target);
    let od = out.data_mut();
    for r in 0..rows {
        od[r * m + start..r * m + start + len]
            .copy_from_slice(&g.data()[r * len..(r + 1) * len]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_backward() {
        let t = Tape::new();
        let a = t.leaf(Tensor::from_slice(&[1.0, 2.0]));
        let b = t.leaf(Tensor::from_slice(&[3.0, 4.0]));
        let c = a.add(&b).sum_all();
        c.backward();
        assert_eq!(a.grad().data(), &[1.0, 1.0]);
        assert_eq!(b.grad().data(), &[1.0, 1.0]);
    }

    #[test]
    fn mul_backward() {
        let t = Tape::new();
        let a = t.leaf(Tensor::from_slice(&[2.0, 3.0]));
        let b = t.leaf(Tensor::from_slice(&[5.0, 7.0]));
        let c = a.mul(&b).sum_all();
        c.backward();
        assert_eq!(a.grad().data(), &[5.0, 7.0]);
        assert_eq!(b.grad().data(), &[2.0, 3.0]);
    }

    #[test]
    fn broadcast_add_backward_reduces() {
        let t = Tape::new();
        let a = t.leaf(Tensor::ones([2, 3]));
        let bias = t.leaf(Tensor::from_slice(&[1.0, 2.0, 3.0]));
        let c = a.add(&bias).sum_all();
        c.backward();
        assert_eq!(bias.grad().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn matmul_backward_2d() {
        let t = Tape::new();
        let a = t.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        let b = t.leaf(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]));
        let c = a.matmul(&b).sum_all();
        c.backward();
        // dA = 1s @ B^T
        assert_eq!(a.grad().data(), &[11.0, 15.0, 11.0, 15.0]);
        // dB = A^T @ 1s
        assert_eq!(b.grad().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn matmul_backward_batched_shared_rhs() {
        let t = Tape::new();
        let a = t.leaf(Tensor::ones([2, 2, 3]));
        let w = t.leaf(Tensor::ones([3, 2]));
        let c = a.matmul(&w).sum_all();
        c.backward();
        assert_eq!(a.grad().shape().dims(), &[2, 2, 3]);
        assert_eq!(w.grad().shape().dims(), &[3, 2]);
        // each weight sees 2 batches * 2 rows of ones
        assert!(w.grad().data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn chain_rule_square() {
        let t = Tape::new();
        let x = t.leaf(Tensor::from_slice(&[3.0]));
        let y = x.square().scale(2.0).sum_all(); // 2x^2 -> dy/dx = 4x = 12
        y.backward();
        assert_eq!(x.grad().data(), &[12.0]);
    }

    #[test]
    fn sigmoid_backward_value() {
        let t = Tape::new();
        let x = t.leaf(Tensor::from_slice(&[0.0]));
        let y = x.sigmoid().sum_all();
        y.backward();
        // sigma'(0) = 0.25
        assert!((x.grad().data()[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn softmax_backward_sums_to_zero() {
        // Because softmax output sums to 1, gradient of sum over the
        // softmax should be ~0 everywhere.
        let t = Tape::new();
        let x = t.leaf(Tensor::from_slice(&[0.3, -1.2, 2.0]));
        let y = x.softmax_last().sum_all();
        y.backward();
        for &v in x.grad().data() {
            assert!(v.abs() < 1e-12, "grad {v}");
        }
    }

    #[test]
    fn layer_norm_output_standardized() {
        let t = Tape::new();
        let x = t.leaf(Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]));
        let y = x.layer_norm_last(1e-5);
        let v = y.value();
        assert!(v.mean().abs() < 1e-10);
        let var: f64 = v.data().iter().map(|a| a * a).sum::<f64>() / 4.0;
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        let t = Tape::new();
        let x = t.leaf(Tensor::from_slice(&[2.0]));
        let y = x.mul(&x).sum_all(); // x^2 via reuse, dy/dx = 2x = 4
        y.backward();
        assert_eq!(x.grad().data(), &[4.0]);
    }

    #[test]
    fn concat_narrow_backward() {
        let t = Tape::new();
        let a = t.leaf(Tensor::from_slice(&[1.0, 2.0]));
        let b = t.leaf(Tensor::from_slice(&[3.0]));
        let c = Var::concat_last(&[a.clone(), b.clone()]);
        let d = c.narrow_last(1, 2).scale(3.0).sum_all();
        d.backward();
        assert_eq!(a.grad().data(), &[0.0, 3.0]);
        assert_eq!(b.grad().data(), &[3.0]);
    }

    #[test]
    fn mean_last_backward() {
        let t = Tape::new();
        let x = t.leaf(Tensor::ones([2, 4]));
        let y = x.mean_last().sum_all();
        y.backward();
        assert!(x.grad().data().iter().all(|&v| (v - 0.25).abs() < 1e-12));
    }

    fn pseudo(shape: &[usize], seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        Tensor::from_fn(shape.to_vec(), |_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn fused_linear_act_matches_unfused_bitwise() {
        let x = pseudo(&[2, 5, 4], 3);
        let w = pseudo(&[4, 6], 4);
        let b = pseudo(&[6], 5);
        for act in [Act::Identity, Act::Relu, Act::Sigmoid, Act::Tanh] {
            let t1 = Tape::new();
            let (xv, wv, bv) = (t1.leaf(x.clone()), t1.leaf(w.clone()), t1.leaf(b.clone()));
            let fused = xv.linear_act(&wv, Some(&bv), act);
            fused.square().mean_all().backward();

            let t2 = Tape::new();
            let (xu, wu, bu) = (t2.leaf(x.clone()), t2.leaf(w.clone()), t2.leaf(b.clone()));
            let pre = xu.matmul(&wu).add(&bu);
            let unfused = match act {
                Act::Identity => pre,
                Act::Relu => pre.relu(),
                Act::Sigmoid => pre.sigmoid(),
                Act::Tanh => pre.tanh(),
            };
            unfused.square().mean_all().backward();

            assert_eq!(fused.value().data(), unfused.value().data(), "{act:?} value");
            assert_eq!(xv.grad().data(), xu.grad().data(), "{act:?} dx");
            assert_eq!(wv.grad().data(), wu.grad().data(), "{act:?} dw");
            assert_eq!(bv.grad().data(), bu.grad().data(), "{act:?} db");
            assert_eq!(t1.len(), t2.len() - if act == Act::Identity { 1 } else { 2 });
        }
    }

    #[test]
    fn fused_layer_norm_affine_matches_unfused_bitwise() {
        let x = pseudo(&[3, 4, 6], 7);
        let gamma = pseudo(&[6], 8);
        let beta = pseudo(&[6], 9);

        let t1 = Tape::new();
        let (xv, gv, bv) = (t1.leaf(x.clone()), t1.leaf(gamma.clone()), t1.leaf(beta.clone()));
        let fused = xv.layer_norm_affine(&gv, &bv, 1e-5);
        fused.square().mean_all().backward();

        let t2 = Tape::new();
        let (xu, gu, bu) = (t2.leaf(x.clone()), t2.leaf(gamma.clone()), t2.leaf(beta.clone()));
        let unfused = xu.layer_norm_last(1e-5).mul(&gu).add(&bu);
        unfused.square().mean_all().backward();

        assert_eq!(fused.value().data(), unfused.value().data());
        assert_eq!(xv.grad().data(), xu.grad().data());
        assert_eq!(gv.grad().data(), gu.grad().data());
        assert_eq!(bv.grad().data(), bu.grad().data());
        assert_eq!(t1.len(), t2.len() - 2);
    }

    #[test]
    fn fused_matmul_t_scaled_matches_unfused_bitwise() {
        let q = pseudo(&[2, 4, 3], 11);
        let k = pseudo(&[2, 5, 3], 12);

        let t1 = Tape::new();
        let (qv, kv) = (t1.leaf(q.clone()), t1.leaf(k.clone()));
        let fused = qv.matmul_t_scaled(&kv, 0.25);
        fused.square().mean_all().backward();

        let t2 = Tape::new();
        let (qu, ku) = (t2.leaf(q.clone()), t2.leaf(k.clone()));
        let unfused = qu.matmul(&ku.transpose()).scale(0.25);
        unfused.square().mean_all().backward();

        assert_eq!(fused.value().data(), unfused.value().data());
        assert_eq!(qv.grad().data(), qu.grad().data());
        assert_eq!(kv.grad().data(), ku.grad().data());
        assert_eq!(t1.len(), t2.len() - 2);
    }

    #[test]
    #[should_panic(expected = "different tapes")]
    fn cross_tape_panics() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let a = t1.leaf(Tensor::scalar(1.0));
        let b = t2.leaf(Tensor::scalar(2.0));
        let _ = a.add(&b);
    }
}

//! # tranad-tensor
//!
//! A minimal, dependency-free dense tensor library with tape-based
//! reverse-mode automatic differentiation, written as the deep-learning
//! substrate for the TranAD reproduction.
//!
//! The design mirrors what the TranAD paper needs and nothing more:
//!
//! - [`Tensor`]: dense row-major `f64` storage of arbitrary rank with
//!   NumPy-style broadcasting, 2-d/batched matmul, softmax, layer-norm
//!   building blocks, concatenation and narrowing along the feature axis.
//! - [`Tape`] / [`Var`]: eager operator recording and reverse-mode
//!   differentiation. A fresh tape per training step; model parameters live
//!   outside and are re-introduced as leaves.
//! - [`buf`] / [`bufpool`]: shared, copy-on-write tensor storage backed by
//!   a thread-local buffer pool — tensor clones are O(1) and steady-state
//!   training steps recycle buffers instead of allocating.
//! - [`check`]: finite-difference gradient checking used across the
//!   workspace's tests.
//! - [`kernels`]: packed, register-tiled matmul micro-kernels (and the
//!   naive `reference_*` forms they are tested bitwise-equal to).
//! - [`pool`]: a from-scratch thread pool driving the matmul/elementwise
//!   hot paths (`TRANAD_THREADS` to override sizing; results are bitwise
//!   identical for any thread count).
//! - [`rng`]: the workspace's seeded SplitMix64 generator (keeps the build
//!   hermetic — no external `rand`).
//!
//! ## Example
//!
//! ```
//! use tranad_tensor::{Tape, Tensor};
//!
//! let tape = Tape::new();
//! let w = tape.leaf(Tensor::from_vec(vec![0.5, -0.5], [1, 2]));
//! let x = tape.leaf(Tensor::from_vec(vec![2.0], [1, 1]));
//! let y = x.matmul(&w).sigmoid();
//! let loss = y.square().mean_all();
//! loss.backward();
//! assert_eq!(w.grad().shape().dims(), &[1, 2]);
//! ```

pub mod buf;
pub mod bufpool;
pub mod check;
pub mod kernels;
pub mod pool;
pub mod rng;
pub mod shape;
pub mod tape;
pub mod tensor;

pub use rng::Rng;
pub use shape::Shape;
pub use tape::{Tape, Var};
pub use tensor::{Act, Tensor};

//! Finite-difference gradient checking, shared by this crate's tests and by
//! downstream layers (`tranad-nn`) to validate their composite ops.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Result of comparing analytic and numeric gradients for one input.
#[derive(Debug)]
pub struct GradCheck {
    /// Largest absolute elementwise difference.
    pub max_abs_diff: f64,
    /// Largest relative difference (guarded against tiny denominators).
    pub max_rel_diff: f64,
}

/// Checks the analytic gradient of `f` (a scalar-valued function of leaves
/// built from `inputs`) against central finite differences.
///
/// `f` is called repeatedly with perturbed copies of the inputs; it must be
/// deterministic. Returns one [`GradCheck`] per input.
pub fn check_gradients(
    inputs: &[Tensor],
    eps: f64,
    f: impl Fn(&Tape, &[Var]) -> Var,
) -> Vec<GradCheck> {
    // Analytic pass.
    let tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
    let out = f(&tape, &vars);
    assert_eq!(out.shape().numel(), 1, "grad check requires a scalar output");
    out.backward();
    let analytic: Vec<Tensor> = vars.iter().map(|v| v.grad()).collect();

    let eval = |perturbed: &[Tensor]| -> f64 {
        let tape = Tape::new();
        let vars: Vec<Var> = perturbed.iter().map(|t| tape.leaf(t.clone())).collect();
        f(&tape, &vars).value().item()
    };

    let mut results = Vec::with_capacity(inputs.len());
    for (i, input) in inputs.iter().enumerate() {
        let mut max_abs: f64 = 0.0;
        let mut max_rel: f64 = 0.0;
        for j in 0..input.numel() {
            let mut plus: Vec<Tensor> = inputs.to_vec();
            plus[i].data_mut()[j] += eps;
            let mut minus: Vec<Tensor> = inputs.to_vec();
            minus[i].data_mut()[j] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let a = analytic[i].data()[j];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1e-8);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
        results.push(GradCheck { max_abs_diff: max_abs, max_rel_diff: max_rel });
    }
    results
}

/// Asserts that every input's analytic gradient matches finite differences
/// within `tol` (relative).
pub fn assert_gradients_match(
    inputs: &[Tensor],
    tol: f64,
    f: impl Fn(&Tape, &[Var]) -> Var,
) {
    for (i, r) in check_gradients(inputs, 1e-5, f).iter().enumerate() {
        assert!(
            r.max_rel_diff < tol || r.max_abs_diff < tol,
            "input {i}: analytic vs numeric gradient mismatch: {r:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn randomish(shape: &[usize], seed: u64) -> Tensor {
        // Deterministic pseudo-random values in [-1, 1] without pulling in
        // an RNG dependency.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        Tensor::from_fn(shape.to_vec(), |_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn elementwise_chain() {
        let x = randomish(&[3, 4], 7);
        assert_gradients_match(&[x], 1e-4, |_t, v| {
            v[0].sigmoid().mul(&v[0].tanh()).add_scalar(0.5).square().mean_all()
        });
    }

    #[test]
    fn matmul_chain() {
        let a = randomish(&[3, 4], 1);
        let b = randomish(&[4, 2], 2);
        assert_gradients_match(&[a, b], 1e-4, |_t, v| {
            v[0].matmul(&v[1]).relu().sum_all()
        });
    }

    #[test]
    fn batched_attention_like() {
        let q = randomish(&[2, 3, 4], 3);
        let k = randomish(&[2, 3, 4], 4);
        let vv = randomish(&[2, 3, 4], 5);
        assert_gradients_match(&[q, k, vv], 1e-3, |_t, v| {
            let scores = v[0].matmul(&v[1].transpose()).scale(0.5).softmax_last();
            scores.matmul(&v[2]).square().mean_all()
        });
    }

    #[test]
    fn layer_norm_grad() {
        let x = randomish(&[2, 6], 9);
        assert_gradients_match(&[x], 1e-3, |_t, v| {
            v[0].layer_norm_last(1e-5).square().mean_all()
        });
    }

    #[test]
    fn div_and_sqrt_grad() {
        let mut x = randomish(&[5], 11);
        // keep strictly positive for sqrt/div
        for v in x.data_mut() {
            *v = v.abs() + 0.5;
        }
        let y = randomish(&[5], 12);
        assert_gradients_match(&[x, y], 1e-4, |_t, v| {
            v[1].div(&v[0].sqrt()).exp().mean_all()
        });
    }

    #[test]
    fn concat_narrow_grad() {
        let a = randomish(&[2, 3], 21);
        let b = randomish(&[2, 2], 22);
        assert_gradients_match(&[a, b], 1e-4, |_t, v| {
            let c = Var::concat_last(&[v[0].clone(), v[1].clone()]);
            c.narrow_last(1, 3).square().sum_all()
        });
    }

    #[test]
    fn broadcast_bias_grad() {
        let x = randomish(&[4, 3], 31);
        let bias = randomish(&[3], 32);
        assert_gradients_match(&[x, bias], 1e-4, |_t, v| {
            v[0].add(&v[1]).tanh().mean_all()
        });
    }
}

//! Packed, register-tiled matmul micro-kernels (see DESIGN.md "Kernel
//! architecture").
//!
//! Every kernel in this module computes each output element as the same
//! ascending-`k` sum of products the naive triple loop produces: tiles
//! change *which* elements a block of code computes, never the order of
//! additions *within* an element. That makes the tiled kernels bitwise
//! identical to the `reference_*` implementations below (the pre-tiling
//! kernels, kept as the executable spec for the parity tests) at any
//! `TRANAD_THREADS` setting — determinism by construction, not by
//! re-baselining.
//!
//! Layout of the family:
//!
//! - [`pack_rhs`] copies the shared `[k, m]` rhs into column panels of
//!   width [`NR`] so the micro-kernel streams it contiguously. Panel
//!   scratch comes from the thread-local [`crate::bufpool`] via
//!   [`with_pack_scratch`] (recycled across steps; every element is
//!   overwritten, so stale NaN-poisoned contents can never leak).
//! - [`matmul_tiled_packed`] / [`matmul_tiled_direct`] drive an
//!   [`MR`]`x`[`NR`] register tile over the output, with the bias +
//!   activation [`Epilogue`] folded into the tile write-out (no second
//!   full-buffer pass).
//! - [`matmul_nt_tiled`] (attention scores, `a @ b^T * scale`) and
//!   [`matmul_tn_tiled`] (grad-matmuls, `a^T @ g`) tile the transposed
//!   forms without materializing a transpose.
//!
//! Deliberately no `x == 0.0` shortcuts anywhere: skipping a term would
//! turn `0 * NaN` / `0 * inf` into `0`, silently masking non-finite values
//! instead of propagating them IEEE-754-style.

use crate::bufpool;
use crate::tensor::Act;
use std::sync::Arc;

/// Rows of output per register tile.
pub const MR: usize = 4;
/// Columns of output per register tile (also the packed panel width). Eight
/// columns give the k-loop eight independent accumulator chains per row —
/// enough to cover FMA latency, which four could not.
pub const NR: usize = 8;

/// Minimum rhs element count before panel packing pays for itself: below
/// this the rhs sits in L1 and strided reads are free; above it, packing
/// converts the re-streamed panel walk into sequential, fully-utilized
/// cache lines.
const PACK_MIN_RHS: usize = 2048;
/// Minimum output row count before packing pays: the pack pass costs one
/// sweep over rhs, amortized across `rows / MR` row blocks.
const PACK_MIN_ROWS: usize = 4 * MR;

/// Bias + activation folded into the micro-kernel write-out. The two
/// per-element operations (`v + bias[j]`, then `act`) are exactly the ones
/// the reference serial epilogue applies, in the same order, so fusing them
/// into the tile store is bitwise-free.
#[derive(Clone, Copy)]
pub struct Epilogue<'a> {
    /// Per-column bias of length `m`, added before the activation.
    pub bias: Option<&'a [f64]>,
    /// Activation applied to the biased value.
    pub act: Act,
}

impl Epilogue<'_> {
    /// The identity epilogue: plain matmul write-out.
    pub const NONE: Epilogue<'static> = Epilogue { bias: None, act: Act::Identity };

    /// Applies the epilogue to one finished dot product in output column `j`.
    #[inline(always)]
    fn apply(&self, j: usize, v: f64) -> f64 {
        let pre = match self.bias {
            Some(b) => v + b[j],
            None => v,
        };
        self.act.apply(pre)
    }
}

/// True when packing `rhs` into panels is worth the extra sweep for a
/// `rows x k @ k x m` product. Depends only on the shape — never on thread
/// count — so the serial and parallel paths take the same branch.
pub fn should_pack(rows: usize, k: usize, m: usize) -> bool {
    rows >= PACK_MIN_ROWS && k * m >= PACK_MIN_RHS
}

/// Runs `f` with a pooled scratch buffer of `len` elements. Contents are
/// stale values from a previous use; [`pack_rhs`] overwrites every element
/// before anything reads it. The buffer is recycled into this thread's
/// pool afterwards, so steady-state training/serving steps re-pack into
/// the same allocation.
pub fn with_pack_scratch<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    if len == 0 {
        return f(&mut []);
    }
    let mut arc = bufpool::take(len);
    let r = f(Arc::get_mut(&mut arc).expect("pooled buffer is uniquely owned"));
    bufpool::recycle(arc);
    r
}

/// Packs `b[k, m]` into column panels of width [`NR`]: panel `p` holds
/// columns `[p*NR, min((p+1)*NR, m))` row-major at its true width, so the
/// micro-kernel's k-loop streams it as contiguous, fully-utilized cache
/// lines. `dst` must hold exactly `k * m` elements; every one is written.
pub fn pack_rhs(b: &[f64], k: usize, m: usize, dst: &mut [f64]) {
    debug_assert_eq!(dst.len(), k * m, "pack_rhs scratch size");
    let mut at = 0;
    let mut j0 = 0;
    while j0 < m {
        let w = NR.min(m - j0);
        for l in 0..k {
            dst[at..at + w].copy_from_slice(&b[l * m + j0..l * m + j0 + w]);
            at += w;
        }
        j0 += NR;
    }
}

/// Full-speed `MR x NR` register tile: 16 accumulators live in registers
/// across the whole k-loop, each accumulating its `a[i] * b[j]` products in
/// ascending-`k` order (the reference order). `a` holds exactly [`MR`] rows
/// of length `k`; `b`'s row `l` starts at `l * ldb` and is at least [`NR`]
/// wide.
#[inline(always)]
fn tile_full(a: &[f64], k: usize, b: &[f64], ldb: usize) -> [[f64; NR]; MR] {
    let (a0, rest) = a.split_at(k);
    let (a1, rest) = rest.split_at(k);
    let (a2, a3) = rest.split_at(k);
    let mut acc = [[0.0f64; NR]; MR];
    for l in 0..k {
        let bl = &b[l * ldb..l * ldb + NR];
        let av = [a0[l], a1[l], a2[l], a3[l]];
        for r in 0..MR {
            for c in 0..NR {
                acc[r][c] += av[r] * bl[c];
            }
        }
    }
    acc
}

/// Ragged-edge tile: `mr <= MR` rows by `w <= NR` columns, same ascending-`k`
/// accumulation order per element as [`tile_full`].
#[inline(always)]
fn tile_edge(a: &[f64], k: usize, mr: usize, b: &[f64], ldb: usize, w: usize) -> [[f64; NR]; MR] {
    let mut acc = [[0.0f64; NR]; MR];
    for l in 0..k {
        let bl = &b[l * ldb..l * ldb + w];
        for r in 0..mr {
            let ar = a[r * k + l];
            for (c, &bv) in bl.iter().enumerate() {
                acc[r][c] += ar * bv;
            }
        }
    }
    acc
}

/// Stores one finished tile, applying the epilogue per element. Writes (not
/// accumulates), so callers never pre-zero the output.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn write_tile(
    out: &mut [f64],
    m: usize,
    i0: usize,
    j0: usize,
    mr: usize,
    w: usize,
    acc: &[[f64; NR]; MR],
    epi: Epilogue,
) {
    for r in 0..mr {
        let row = &mut out[(i0 + r) * m + j0..(i0 + r) * m + j0 + w];
        for (c, o) in row.iter_mut().enumerate() {
            *o = epi.apply(j0 + c, acc[r][c]);
        }
    }
}

/// Shared tile walk for the NN kernels: `panel(j0, w)` resolves the rhs
/// columns `[j0, j0 + w)` to a base slice and row stride — the packed and
/// strided drivers differ only in that lookup.
fn drive_nn<'b>(
    a: &[f64],
    out: &mut [f64],
    n: usize,
    k: usize,
    m: usize,
    epi: Epilogue,
    panel: impl Fn(usize, usize) -> (&'b [f64], usize),
) {
    let mut i0 = 0;
    while i0 < n {
        let mr = MR.min(n - i0);
        let arows = &a[i0 * k..(i0 + mr) * k];
        let mut j0 = 0;
        while j0 < m {
            let w = NR.min(m - j0);
            let (bsrc, ldb) = panel(j0, w);
            let acc = if mr == MR && w == NR {
                tile_full(arows, k, bsrc, ldb)
            } else {
                tile_edge(arows, k, mr, bsrc, ldb, w)
            };
            write_tile(out, m, i0, j0, mr, w, &acc, epi);
            j0 += NR;
        }
        i0 += MR;
    }
}

/// Tiled `out[n, m] = epi(a[n, k] @ b)` against a [`pack_rhs`]-packed rhs.
pub fn matmul_tiled_packed(
    a: &[f64],
    packed_b: &[f64],
    out: &mut [f64],
    n: usize,
    k: usize,
    m: usize,
    epi: Epilogue,
) {
    debug_assert_eq!(packed_b.len(), k * m, "packed rhs size");
    // Panel p's rows are its true width wide, so full panels before column
    // j0 occupy (j0 / NR) * k * NR elements.
    drive_nn(a, out, n, k, m, epi, |j0, w| (&packed_b[(j0 / NR) * k * NR..], w));
}

/// Tiled `out[n, m] = epi(a[n, k] @ b[k, m])` reading `b` in place (row
/// stride `m`). Used when [`should_pack`] says packing won't pay.
pub fn matmul_tiled_direct(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    n: usize,
    k: usize,
    m: usize,
    epi: Epilogue,
) {
    debug_assert_eq!(b.len(), k * m, "rhs size");
    drive_nn(a, out, n, k, m, epi, |j0, _w| (&b[j0..], m));
}

/// Tiled `out[n, m] = (a[n, k] @ b[m, k]^T) * scale` (attention scores).
/// Both operands are already k-contiguous, so no packing is needed; each
/// accumulator's dot product runs over `k` in ascending order — the same
/// order as [`reference_matmul_nt`] and as plain matmul on a materialized
/// transpose.
pub fn matmul_nt_tiled(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    n: usize,
    k: usize,
    m: usize,
    scale: f64,
) {
    let mut i0 = 0;
    while i0 < n {
        let mr = MR.min(n - i0);
        let arows = &a[i0 * k..(i0 + mr) * k];
        let mut j0 = 0;
        while j0 < m {
            let w = NR.min(m - j0);
            let brows = &b[j0 * k..(j0 + w) * k];
            let mut acc = [[0.0f64; NR]; MR];
            if mr == MR && w == NR {
                let (a0, rest) = arows.split_at(k);
                let (a1, rest) = rest.split_at(k);
                let (a2, a3) = rest.split_at(k);
                let mut brow: [&[f64]; NR] = [&[]; NR];
                for (c, s) in brow.iter_mut().enumerate() {
                    *s = &brows[c * k..(c + 1) * k];
                }
                for l in 0..k {
                    let av = [a0[l], a1[l], a2[l], a3[l]];
                    let mut bv = [0.0f64; NR];
                    for (c, v) in bv.iter_mut().enumerate() {
                        *v = brow[c][l];
                    }
                    for r in 0..MR {
                        for c in 0..NR {
                            acc[r][c] += av[r] * bv[c];
                        }
                    }
                }
            } else {
                for l in 0..k {
                    for r in 0..mr {
                        let ar = arows[r * k + l];
                        for c in 0..w {
                            acc[r][c] += ar * brows[c * k + l];
                        }
                    }
                }
            }
            for r in 0..mr {
                for c in 0..w {
                    out[(i0 + r) * m + j0 + c] = acc[r][c] * scale;
                }
            }
            j0 += NR;
        }
        i0 += MR;
    }
}

/// Tiled `out[kr, m] = a^T @ g[n, m]` over `kr` columns of `a` (grad-matmul
/// for the tape, without materializing `a^T`). `a`'s column `r` of this
/// block is at `a[i * lda + r]`; the caller offsets `a` to the first column.
/// Each element sums over the shared `n` axis in ascending order — the same
/// order plain matmul uses on a materialized transpose, so results match
/// `transpose().matmul()` bitwise.
pub fn matmul_tn_tiled(
    a: &[f64],
    lda: usize,
    g: &[f64],
    out: &mut [f64],
    n: usize,
    kr: usize,
    m: usize,
) {
    let mut l0 = 0;
    while l0 < kr {
        let mr = MR.min(kr - l0);
        let mut j0 = 0;
        while j0 < m {
            let w = NR.min(m - j0);
            let mut acc = [[0.0f64; NR]; MR];
            if mr == MR && w == NR {
                for i in 0..n {
                    let arow = &a[i * lda + l0..i * lda + l0 + MR];
                    let grow = &g[i * m + j0..i * m + j0 + NR];
                    for r in 0..MR {
                        for c in 0..NR {
                            acc[r][c] += arow[r] * grow[c];
                        }
                    }
                }
            } else {
                for i in 0..n {
                    let arow = &a[i * lda + l0..i * lda + l0 + mr];
                    let grow = &g[i * m + j0..i * m + j0 + w];
                    for (r, &av) in arow.iter().enumerate() {
                        for (c, &gv) in grow.iter().enumerate() {
                            acc[r][c] += av * gv;
                        }
                    }
                }
            }
            for r in 0..mr {
                for c in 0..w {
                    out[(l0 + r) * m + j0 + c] = acc[r][c];
                }
            }
            j0 += NR;
        }
        l0 += MR;
    }
}

// ---- reference kernels -----------------------------------------------------
//
// The pre-tiling implementations, kept verbatim as the executable spec: the
// parity tests assert the tiled kernels above reproduce these bitwise, and
// bench-kernels measures the tiled speedup against them.

/// Reference `out[n, m] += a[n, k] @ b[k, m]` (`out` must start zeroed).
/// Iterates `i, l, j` — the inner loop is contiguous over `b` and `out`,
/// and each element accumulates over `l` (= k) in ascending order.
pub fn reference_matmul(a: &[f64], b: &[f64], out: &mut [f64], n: usize, k: usize, m: usize) {
    for i in 0..n {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * m..(i + 1) * m];
        for (l, &a_il) in a_row.iter().enumerate() {
            let b_row = &b[l * m..(l + 1) * m];
            for (o, &b_lj) in out_row.iter_mut().zip(b_row) {
                *o += a_il * b_lj;
            }
        }
    }
}

/// Reference serial bias + activation epilogue: one full pass over the
/// finished matmul output, cycling the bias across rows.
pub fn reference_bias_act(out: &mut [f64], m: usize, bias: Option<&[f64]>, act: Act) {
    for (o, j) in out.iter_mut().zip((0..m).cycle()) {
        let pre = match bias {
            Some(b) => *o + b[j],
            None => *o,
        };
        *o = act.apply(pre);
    }
}

/// Reference `out[n, m] = (a[n, k] . b[m, k]) * scale`: row-by-row dot
/// products against an un-transposed `b`, accumulating over `k` in
/// ascending order.
#[allow(clippy::too_many_arguments)]
pub fn reference_matmul_nt(
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    n: usize,
    k: usize,
    m: usize,
    scale: f64,
) {
    for i in 0..n {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..m {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out[i * m + j] = acc * scale;
        }
    }
}

/// Reference `out[kr, m] = a^T @ g[n, m]` (same `a` addressing as
/// [`matmul_tn_tiled`]; `out` must start zeroed): each element sums over
/// the shared `n` axis in ascending order.
pub fn reference_matmul_tn(
    a: &[f64],
    lda: usize,
    g: &[f64],
    out: &mut [f64],
    n: usize,
    kr: usize,
    m: usize,
) {
    for r in 0..kr {
        let out_row = &mut out[r * m..(r + 1) * m];
        for i in 0..n {
            let av = a[i * lda + r];
            let g_row = &g[i * m..(i + 1) * m];
            for (o, &gv) in out_row.iter_mut().zip(g_row) {
                *o += av * gv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, mul: usize, md: usize, off: f64, sc: f64) -> Vec<f64> {
        (0..n).map(|i| ((i * mul % md) as f64 - off) * sc).collect()
    }

    #[test]
    fn packed_and_direct_match_reference_bitwise() {
        for &(n, k, m) in &[(1, 1, 1), (4, 4, 4), (5, 3, 7), (13, 9, 6), (33, 17, 31)] {
            let a = seq(n * k, 37, 101, 50.0, 0.013);
            let b = seq(k * m, 53, 97, 48.0, 0.017);
            let mut rf = vec![0.0; n * m];
            reference_matmul(&a, &b, &mut rf, n, k, m);
            let mut td = vec![f64::NAN; n * m];
            matmul_tiled_direct(&a, &b, &mut td, n, k, m, Epilogue::NONE);
            let mut tp = vec![f64::NAN; n * m];
            let mut packed = vec![f64::NAN; k * m];
            pack_rhs(&b, k, m, &mut packed);
            matmul_tiled_packed(&a, &packed, &mut tp, n, k, m, Epilogue::NONE);
            for i in 0..n * m {
                assert_eq!(rf[i].to_bits(), td[i].to_bits(), "direct {n}x{k}x{m} at {i}");
                assert_eq!(rf[i].to_bits(), tp[i].to_bits(), "packed {n}x{k}x{m} at {i}");
            }
        }
    }

    #[test]
    fn epilogue_matches_reference_pass() {
        let (n, k, m) = (7, 5, 6);
        let a = seq(n * k, 13, 23, 11.0, 0.21);
        let b = seq(k * m, 7, 19, 9.0, 0.17);
        let bias = seq(m, 1, m, 1.0, 0.3);
        for act in [Act::Identity, Act::Relu, Act::Sigmoid, Act::Tanh] {
            let mut rf = vec![0.0; n * m];
            reference_matmul(&a, &b, &mut rf, n, k, m);
            reference_bias_act(&mut rf, m, Some(&bias), act);
            let mut tl = vec![f64::NAN; n * m];
            let epi = Epilogue { bias: Some(&bias), act };
            matmul_tiled_direct(&a, &b, &mut tl, n, k, m, epi);
            assert!(rf.iter().zip(&tl).all(|(x, y)| x.to_bits() == y.to_bits()), "{act:?}");
        }
    }

    #[test]
    fn nt_and_tn_match_reference_bitwise() {
        let (n, k, m) = (9, 7, 11);
        let a = seq(n * k, 11, 29, 14.0, 0.13);
        let b = seq(m * k, 17, 31, 15.0, 0.07);
        let mut rf = vec![0.0; n * m];
        reference_matmul_nt(&a, &b, &mut rf, n, k, m, 0.5);
        let mut tl = vec![f64::NAN; n * m];
        matmul_nt_tiled(&a, &b, &mut tl, n, k, m, 0.5);
        assert!(rf.iter().zip(&tl).all(|(x, y)| x.to_bits() == y.to_bits()));

        let g = seq(n * m, 19, 37, 18.0, 0.11);
        let mut rf = vec![0.0; k * m];
        reference_matmul_tn(&a, k, &g, &mut rf, n, k, m);
        let mut tl = vec![f64::NAN; k * m];
        matmul_tn_tiled(&a, k, &g, &mut tl, n, k, m);
        assert!(rf.iter().zip(&tl).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn pack_scratch_overwrites_every_element() {
        let (k, m) = (6, 10);
        let b = seq(k * m, 3, 41, 20.0, 0.5);
        with_pack_scratch(k * m, |dst| {
            dst.fill(f64::NAN);
            pack_rhs(&b, k, m, dst);
            assert!(dst.iter().all(|v| v.is_finite()), "pack left stale elements");
        });
    }
}

//! Property test for the buffer pool: results must never depend on what a
//! recycled buffer previously held.
//!
//! Strategy: compute a battery of tensor/tape operations twice — once with
//! an empty pool (every buffer freshly allocated and zeroed) and once with
//! a pool deliberately poisoned with NaN-filled recycled buffers of every
//! size class the battery uses. If any op exposed a stale element instead
//! of overwriting it, the poisoned run would produce NaN (never bitwise
//! equal to anything) and the comparison would fail.

use tranad_tensor::{bufpool, Act, Rng, Tape, Tensor};

/// Fills the thread-local pool with NaN buffers across a wide range of
/// size classes, several per class.
fn poison_pool() {
    for exp in 0..14u32 {
        let n = 1usize << exp;
        for extra in 0..3 {
            let mut t = Tensor::zeros([n + extra.min(n - 1)]);
            t.data_mut().fill(f64::NAN);
            drop(t); // unique => recycled with NaN contents
        }
    }
}

/// Runs a battery of ops and returns every produced value, in order.
fn battery(seed: u64) -> Vec<f64> {
    let mut out = Vec::new();
    let mut rng = Rng::new(seed);
    let mut fill = |shape: &[usize]| {
        let r = &mut rng;
        Tensor::from_fn(shape.to_vec(), |_| r.normal())
    };

    // Raw tensor ops that write into pooled `uninit`/`zeroed` buffers.
    let a = fill(&[3, 4, 5]);
    let b = fill(&[3, 5, 4]);
    let c = fill(&[4]);
    out.extend_from_slice(a.matmul(&b).data());
    out.extend_from_slice(a.matmul_nt_scaled(&fill(&[3, 2, 5]), 0.5).data());
    out.extend_from_slice(a.matmul_bias_act(&b, Some(&c), Act::Tanh).data());

    // Matmuls big enough that the tiled kernels pack the rhs into pooled
    // per-thread panel scratch (`kernels::should_pack` is true for these
    // shapes): if packing ever read a stale element from a recycled — here
    // NaN-poisoned — scratch buffer, these results would differ.
    let big_a = fill(&[48, 50]);
    let big_b = fill(&[50, 48]);
    let big_bias = fill(&[48]);
    out.extend_from_slice(big_a.matmul(&big_b).data());
    out.extend_from_slice(big_a.matmul_bias_act(&big_b, Some(&big_bias), Act::Sigmoid).data());
    let big_a3 = fill(&[2, 24, 50]);
    let big_b3 = fill(&[2, 50, 48]);
    out.extend_from_slice(big_a3.matmul(&big_b3).data());
    out.extend_from_slice(big_a3.matmul(&big_b).data());
    out.extend_from_slice(big_a.matmul_tn(&fill(&[48, 44])).data());
    out.extend_from_slice(a.map(|v| v * 2.0 + 1.0).data());
    let row5 = fill(&[5]);
    out.extend_from_slice(a.broadcast_zip(&row5, |x, y| x + y).data());
    let (normed, inv_std) = a.layer_norm_parts(1e-5);
    out.extend_from_slice(normed.data());
    out.extend_from_slice(inv_std.data());
    let gamma5 = fill(&[5]);
    let beta5 = fill(&[5]);
    out.extend_from_slice(normed.scale_shift_last(&gamma5, &beta5).data());
    out.extend_from_slice(a.softmax_last().data());
    out.extend_from_slice(a.transpose().data());
    out.extend_from_slice(a.reduce_to_shape(&[5usize][..].into()).data());
    out.push(a.sum());
    out.push(a.mean());

    // Tape forward + backward: gradients flow through pooled helper
    // buffers (expand/scatter/sum-axis/softmax/layer-norm backward).
    let tape = Tape::new();
    let x = tape.leaf(fill(&[2, 6]));
    let w = tape.leaf(fill(&[6, 6]));
    let bias = tape.leaf(fill(&[6]));
    let gamma = tape.leaf(fill(&[6]));
    let beta = tape.leaf(fill(&[6]));
    let h = x.linear_act(&w, Some(&bias), Act::Sigmoid);
    let n = h.layer_norm_affine(&gamma, &beta, 1e-5);
    let s = n.matmul_t_scaled(&n, 0.25).softmax_last();
    let loss = s.matmul(&n).square().mean_all();
    loss.backward();
    out.push(loss.value().item());
    for v in [&x, &w, &bias, &gamma, &beta] {
        out.extend_from_slice(v.grad().data());
    }
    out
}

#[test]
fn poisoned_pool_is_invisible_to_results() {
    for seed in 0..6u64 {
        bufpool::clear();
        let clean = battery(seed);
        assert!(
            clean.iter().all(|v| v.is_finite()),
            "battery must be NaN-free on a clean pool"
        );
        poison_pool();
        let dirty = battery(seed);
        assert_eq!(clean.len(), dirty.len());
        for (i, (x, y)) in clean.iter().zip(&dirty).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "seed {seed}: value {i} differs after pool reuse: {x} vs {y}"
            );
        }
    }
    bufpool::clear();
}

#[test]
fn zeroed_allocations_ignore_poisoned_buffers() {
    bufpool::clear();
    poison_pool();
    for n in [1usize, 3, 17, 64, 1000, 4096] {
        let t = Tensor::zeros([n]);
        assert!(t.data().iter().all(|&v| v == 0.0), "zeros({n}) leaked stale values");
    }
    bufpool::clear();
}

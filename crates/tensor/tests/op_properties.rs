//! Property-based tests for tensor algebra and autograd: algebraic
//! identities, gradient linearity, and broadcast/reduce duality.
//!
//! Cases are generated with the crate's own seeded [`Rng`] (no `proptest`
//! dependency): each property is checked over a few dozen random inputs,
//! and every assertion message carries the case number, which doubles as
//! the seed for reproduction.

use tranad_tensor::check::check_gradients;
use tranad_tensor::{Rng, Shape, Tape, Tensor};

const CASES: u64 = 48;

fn random_vec(rng: &mut Rng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.range_f64(lo, hi)).collect()
}

#[test]
fn matmul_distributes_over_addition() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let a = Tensor::from_vec(random_vec(&mut rng, 6, -3.0, 3.0), [2, 3]);
        let b = Tensor::from_vec(random_vec(&mut rng, 6, -3.0, 3.0), [3, 2]);
        let c = Tensor::from_vec(random_vec(&mut rng, 6, -3.0, 3.0), [3, 2]);
        let lhs = a.matmul(&b.zip(&c, |x, y| x + y));
        let rhs = a.matmul(&b).zip(&a.matmul(&c), |x, y| x + y);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-9, "case {case}: {x} vs {y}");
        }
    }
}

#[test]
fn transpose_involution() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let t = Tensor::from_vec(random_vec(&mut rng, 12, -3.0, 3.0), [3, 4]);
        let round_trip = t.transpose().transpose();
        assert_eq!(round_trip.data(), t.data(), "case {case}");
    }
}

#[test]
fn matmul_transpose_identity() {
    // (A B)^T = B^T A^T
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let a = Tensor::from_vec(random_vec(&mut rng, 6, -3.0, 3.0), [2, 3]);
        let b = Tensor::from_vec(random_vec(&mut rng, 6, -3.0, 3.0), [3, 2]);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-9, "case {case}: {x} vs {y}");
        }
    }
}

#[test]
fn gradient_is_linear_in_seed_scale() {
    // d(s * f)/dx = s * df/dx
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let x = Tensor::from_vec(random_vec(&mut rng, 8, -3.0, 3.0), [2, 4]);
        let s = rng.range_f64(0.1, 5.0);
        let tape1 = Tape::new();
        let x1 = tape1.leaf(x.clone());
        x1.tanh().mean_all().backward();
        let g1 = x1.grad();

        let tape2 = Tape::new();
        let x2 = tape2.leaf(x.clone());
        x2.tanh().mean_all().scale(s).backward();
        let g2 = x2.grad();

        for (a, b) in g1.data().iter().zip(g2.data()) {
            assert!((a * s - b).abs() < 1e-9, "case {case}: {a}*{s} vs {b}");
        }
    }
}

#[test]
fn sum_all_equals_sum_last_chain() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let t = Tensor::from_vec(random_vec(&mut rng, 12, -3.0, 3.0), [3, 4]);
        let tape = Tape::new();
        let x = tape.leaf(t.clone());
        let direct = x.sum_all().value().item();
        let chained = x.sum_last().sum_all().value().item();
        assert!((direct - chained).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn broadcast_then_reduce_is_scaling() {
    // Broadcasting [4] over [rows, 4] and reducing back multiplies by rows.
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let small = Tensor::from_vec(random_vec(&mut rng, 4, -3.0, 3.0), [4]);
        let rows = rng.range_usize(1, 6);
        let big = Tensor::ones([rows, 4]);
        let summed = big
            .broadcast_zip(&small, |a, b| a * b)
            .reduce_to_shape(&Shape::new([4]));
        for (x, y) in summed.data().iter().zip(small.data()) {
            assert!((x - y * rows as f64).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn layer_norm_is_shift_invariant() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let v = random_vec(&mut rng, 8, -3.0, 3.0);
        let shift = rng.range_f64(-5.0, 5.0);
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(v.clone(), [2, 4]));
        let b = tape.leaf(Tensor::from_vec(
            v.iter().map(|x| x + shift).collect::<Vec<_>>(),
            [2, 4],
        ));
        let na = a.layer_norm_last(1e-8).value();
        let nb = b.layer_norm_last(1e-8).value();
        for (x, y) in na.data().iter().zip(nb.data()) {
            assert!((x - y).abs() < 1e-6, "case {case}: {x} vs {y}");
        }
    }
}

#[test]
fn relu_grad_matches_numeric() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        // Keep values away from the kink where the subgradient is ambiguous.
        let v: Vec<f64> = random_vec(&mut rng, 6, -2.0, 2.0)
            .into_iter()
            .map(|x| if x.abs() < 0.05 { x + 0.1 } else { x })
            .collect();
        let x = Tensor::from_vec(v, [6]);
        let checks = check_gradients(&[x], 1e-6, |_t, vars| vars[0].relu().sum_all());
        assert!(checks[0].max_abs_diff < 1e-4, "case {case}");
    }
}

#[test]
fn concat_gradient_splits() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(random_vec(&mut rng, 4, -3.0, 3.0), [1, 4]));
        let b = tape.leaf(Tensor::from_vec(random_vec(&mut rng, 4, -3.0, 3.0), [1, 4]));
        let cat = tranad_tensor::Var::concat_last(&[a.clone(), b.clone()]);
        cat.square().sum_all().backward();
        // Each input's gradient is 2x of itself (d sum(x^2) = 2x).
        let (ga, va) = (a.grad(), a.value());
        for (g, x) in ga.data().iter().zip(va.data()) {
            assert!((g - 2.0 * x).abs() < 1e-9, "case {case}");
        }
        let (gb, vb) = (b.grad(), b.value());
        for (g, x) in gb.data().iter().zip(vb.data()) {
            assert!((g - 2.0 * x).abs() < 1e-9, "case {case}");
        }
    }
}

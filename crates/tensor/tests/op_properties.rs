//! Property-based tests for tensor algebra and autograd: algebraic
//! identities, gradient linearity, and broadcast/reduce duality.

use proptest::prelude::*;
use tranad_tensor::check::check_gradients;
use tranad_tensor::{Shape, Tape, Tensor};

fn tensor_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-3.0..3.0f64, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(6),
        b in tensor_strategy(6),
        c in tensor_strategy(6),
    ) {
        let a = Tensor::from_vec(a, [2, 3]);
        let b = Tensor::from_vec(b, [3, 2]);
        let c = Tensor::from_vec(c, [3, 2]);
        let lhs = a.matmul(&b.zip(&c, |x, y| x + y));
        let rhs = a.matmul(&b).zip(&a.matmul(&c), |x, y| x + y);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_involution(v in tensor_strategy(12)) {
        let t = Tensor::from_vec(v, [3, 4]);
        let round_trip = t.transpose().transpose();
        prop_assert_eq!(round_trip.data(), t.data());
    }

    #[test]
    fn matmul_transpose_identity(a in tensor_strategy(6), b in tensor_strategy(6)) {
        // (A B)^T = B^T A^T
        let a = Tensor::from_vec(a, [2, 3]);
        let b = Tensor::from_vec(b, [3, 2]);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn gradient_is_linear_in_seed_scale(v in tensor_strategy(8), s in 0.1..5.0f64) {
        // d(s * f)/dx = s * df/dx
        let x = Tensor::from_vec(v, [2, 4]);
        let tape1 = Tape::new();
        let x1 = tape1.leaf(x.clone());
        x1.tanh().mean_all().backward();
        let g1 = x1.grad();

        let tape2 = Tape::new();
        let x2 = tape2.leaf(x.clone());
        x2.tanh().mean_all().scale(s).backward();
        let g2 = x2.grad();

        for (a, b) in g1.data().iter().zip(g2.data()) {
            prop_assert!((a * s - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sum_all_equals_sum_last_chain(v in tensor_strategy(12)) {
        let t = Tensor::from_vec(v, [3, 4]);
        let tape = Tape::new();
        let x = tape.leaf(t.clone());
        let direct = x.sum_all().value().item();
        let chained = x.sum_last().sum_all().value().item();
        prop_assert!((direct - chained).abs() < 1e-9);
    }

    #[test]
    fn broadcast_then_reduce_is_scaling(v in tensor_strategy(4), rows in 1usize..6) {
        // Broadcasting [4] over [rows, 4] and reducing back multiplies by rows.
        let small = Tensor::from_vec(v, [4]);
        let big = Tensor::ones([rows, 4]);
        let summed = big
            .broadcast_zip(&small, |a, b| a * b)
            .reduce_to_shape(&Shape::new([4]));
        for (x, y) in summed.data().iter().zip(small.data()) {
            prop_assert!((x - y * rows as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn layer_norm_is_shift_invariant(v in tensor_strategy(8), shift in -5.0..5.0f64) {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(v.clone(), [2, 4]));
        let b = tape.leaf(Tensor::from_vec(v.iter().map(|x| x + shift).collect::<Vec<_>>(), [2, 4]));
        let na = a.layer_norm_last(1e-8).value();
        let nb = b.layer_norm_last(1e-8).value();
        for (x, y) in na.data().iter().zip(nb.data()) {
            prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn relu_grad_matches_numeric(v in prop::collection::vec(-2.0..2.0f64, 6)) {
        // Keep values away from the kink where the subgradient is ambiguous.
        let v: Vec<f64> = v.into_iter().map(|x| if x.abs() < 0.05 { x + 0.1 } else { x }).collect();
        let x = Tensor::from_vec(v, [6]);
        let checks = check_gradients(&[x], 1e-6, |_t, vars| vars[0].relu().sum_all());
        prop_assert!(checks[0].max_abs_diff < 1e-4);
    }

    #[test]
    fn concat_gradient_splits(u in tensor_strategy(4), w in tensor_strategy(4)) {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(u, [1, 4]));
        let b = tape.leaf(Tensor::from_vec(w, [1, 4]));
        let cat = tranad_tensor::Var::concat_last(&[a.clone(), b.clone()]);
        cat.square().sum_all().backward();
        // Each input's gradient is 2x of itself (d sum(x^2) = 2x).
        let (ga, va) = (a.grad(), a.value());
        for (g, x) in ga.data().iter().zip(va.data()) {
            prop_assert!((g - 2.0 * x).abs() < 1e-9);
        }
        let (gb, vb) = (b.grad(), b.value());
        for (g, x) in gb.data().iter().zip(vb.data()) {
            prop_assert!((g - 2.0 * x).abs() < 1e-9);
        }
    }
}

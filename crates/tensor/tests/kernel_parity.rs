//! Property test: the packed, register-tiled micro-kernels are bitwise
//! equal to the retained `reference_*` kernels — the pre-tiling naive
//! loops — over randomized shapes including ragged tails, at every level
//! (raw kernel calls, `Tensor` ops, and tape backward), and across thread
//! counts.
//!
//! Style mirrors `crates/tranad/tests/determinism.rs`: seeded loops over
//! many cases, `pool::with_threads(1)` vs `with_threads(8)` comparisons,
//! and `to_bits()` equality (NaN-safe, tolerance-free). Run it under both
//! `TRANAD_THREADS=1` and `=8` (verify.sh does) to also cover the
//! pool-sizing environment axis.

use tranad_tensor::kernels::{self, Epilogue};
use tranad_tensor::{pool, Act, Rng, Tape, Tensor};

const CASES: u64 = 48;

fn bits_eq(label: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{label}: element {i} differs bitwise: {x} vs {y}"
        );
    }
}

fn randomized(rng: &mut Rng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.normal()).collect()
}

/// Raw kernel parity on ragged shapes `n, k, m ∈ 1..33`: packed and direct
/// tiled drivers, the fused epilogue, and the nt/tn kernels all reproduce
/// the reference loops bitwise.
#[test]
fn tiled_kernels_match_reference_over_ragged_shapes() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let n = 1 + (rng.next_u64() % 32) as usize;
        let k = 1 + (rng.next_u64() % 32) as usize;
        let m = 1 + (rng.next_u64() % 32) as usize;
        let a = randomized(&mut rng, n * k);
        let b = randomized(&mut rng, k * m);

        let mut rf = vec![0.0; n * m];
        kernels::reference_matmul(&a, &b, &mut rf, n, k, m);

        let mut direct = vec![f64::NAN; n * m];
        kernels::matmul_tiled_direct(&a, &b, &mut direct, n, k, m, Epilogue::NONE);
        bits_eq(&format!("direct {n}x{k}x{m} case {case}"), &rf, &direct);

        let mut packed_b = vec![f64::NAN; k * m];
        kernels::pack_rhs(&b, k, m, &mut packed_b);
        let mut packed = vec![f64::NAN; n * m];
        kernels::matmul_tiled_packed(&a, &packed_b, &mut packed, n, k, m, Epilogue::NONE);
        bits_eq(&format!("packed {n}x{k}x{m} case {case}"), &rf, &packed);

        // Fused epilogue vs reference matmul + serial bias/act pass.
        let bias = randomized(&mut rng, m);
        let act = [Act::Identity, Act::Relu, Act::Sigmoid, Act::Tanh][(case % 4) as usize];
        let mut rf_epi = rf.clone();
        kernels::reference_bias_act(&mut rf_epi, m, Some(&bias), act);
        let mut fused = vec![f64::NAN; n * m];
        let epi = Epilogue { bias: Some(&bias), act };
        kernels::matmul_tiled_packed(&a, &packed_b, &mut fused, n, k, m, epi);
        bits_eq(&format!("epilogue {act:?} {n}x{k}x{m} case {case}"), &rf_epi, &fused);

        // nt: a[n,k] @ bt[m,k]^T * scale.
        let bt = randomized(&mut rng, m * k);
        let scale = 1.0 / (1 + case % 5) as f64;
        let mut rf_nt = vec![0.0; n * m];
        kernels::reference_matmul_nt(&a, &bt, &mut rf_nt, n, k, m, scale);
        let mut nt = vec![f64::NAN; n * m];
        kernels::matmul_nt_tiled(&a, &bt, &mut nt, n, k, m, scale);
        bits_eq(&format!("nt {n}x{k}x{m} case {case}"), &rf_nt, &nt);

        // tn: a[n,k]^T @ g[n,m].
        let g = randomized(&mut rng, n * m);
        let mut rf_tn = vec![0.0; k * m];
        kernels::reference_matmul_tn(&a, k, &g, &mut rf_tn, n, k, m);
        let mut tn = vec![f64::NAN; k * m];
        kernels::matmul_tn_tiled(&a, k, &g, &mut tn, n, k, m);
        bits_eq(&format!("tn {n}x{k}x{m} case {case}"), &rf_tn, &tn);
    }
}

/// Tensor-level parity over batched and unbatched shapes, small ragged
/// sizes and cutoff-crossing sizes, at 1 vs 8 threads. The reference is
/// computed per plane with the naive kernels.
#[test]
fn tensor_matmuls_match_reference_at_1_and_8_threads() {
    for case in 0..12u64 {
        let mut rng = Rng::new(1000 + case);
        // Alternate small ragged shapes with shapes big enough to cross
        // both the parallel cutoff and the packing threshold.
        let (b, n, k, m) = if case % 2 == 0 {
            (
                1 + (rng.next_u64() % 4) as usize,
                1 + (rng.next_u64() % 32) as usize,
                1 + (rng.next_u64() % 32) as usize,
                1 + (rng.next_u64() % 32) as usize,
            )
        } else {
            (
                2 + (rng.next_u64() % 3) as usize,
                48 + (rng.next_u64() % 32) as usize,
                48 + (rng.next_u64() % 17) as usize,
                48 + (rng.next_u64() % 23) as usize,
            )
        };
        let a2 = Tensor::from_fn([b * n, k], |_| rng.normal());
        let b2 = Tensor::from_fn([k, m], |_| rng.normal());
        let a3 = a2.reshape([b, n, k]);
        let b3 = Tensor::from_fn([b, k, m], |_| rng.normal());
        let g3 = Tensor::from_fn([b, n, m], |_| rng.normal());
        let bias = Tensor::from_fn([m], |_| rng.normal());

        // Reference results, plane by plane with the naive kernels.
        let mut rf_22 = vec![0.0; b * n * m];
        kernels::reference_matmul(a2.data(), b2.data(), &mut rf_22, b * n, k, m);
        let mut rf_33 = vec![0.0; b * n * m];
        let mut rf_tn = vec![0.0; b * k * m];
        for bi in 0..b {
            kernels::reference_matmul(
                &a3.data()[bi * n * k..(bi + 1) * n * k],
                &b3.data()[bi * k * m..(bi + 1) * k * m],
                &mut rf_33[bi * n * m..(bi + 1) * n * m],
                n,
                k,
                m,
            );
            kernels::reference_matmul_tn(
                &a3.data()[bi * n * k..(bi + 1) * n * k],
                k,
                &g3.data()[bi * n * m..(bi + 1) * n * m],
                &mut rf_tn[bi * k * m..(bi + 1) * k * m],
                n,
                k,
                m,
            );
        }
        let mut rf_fused = rf_22.clone();
        kernels::reference_bias_act(&mut rf_fused, m, Some(bias.data()), Act::Tanh);
        let mut rf_nt = vec![0.0; n * m];
        // nt on the first plane of a3 against a [m, k] rhs.
        let bt = Tensor::from_fn([m, k], |_| rng.normal());
        kernels::reference_matmul_nt(
            &a3.data()[..n * k],
            bt.data(),
            &mut rf_nt,
            n,
            k,
            m,
            0.5,
        );
        let a_plane = Tensor::from_vec(a3.data()[..n * k].to_vec(), [n, k]);

        for threads in [1usize, 8] {
            pool::with_threads(threads, || {
                let label = |op: &str| format!("{op} case {case} threads {threads}");
                bits_eq(&label("matmul(2,2)"), a2.matmul(&b2).data(), &rf_22);
                bits_eq(&label("matmul(3,2)"), a3.matmul(&b2).data(), &rf_22);
                bits_eq(&label("matmul(3,3)"), a3.matmul(&b3).data(), &rf_33);
                bits_eq(
                    &label("matmul_bias_act"),
                    a2.matmul_bias_act(&b2, Some(&bias), Act::Tanh).data(),
                    &rf_fused,
                );
                bits_eq(
                    &label("matmul_nt_scaled"),
                    a_plane.matmul_nt_scaled(&bt, 0.5).data(),
                    &rf_nt,
                );
                bits_eq(&label("matmul_tn(3,3)"), a3.matmul_tn(&g3).data(), &rf_tn);
                // matmul_tn must also match the materialized-transpose chain
                // it replaces in the tape backward.
                bits_eq(
                    &label("matmul_tn vs transpose"),
                    a3.matmul_tn(&g3).data(),
                    a3.transpose().matmul(&g3).data(),
                );
            });
        }
    }
}

/// The transpose-free grad-matmul rewiring: backward gradients through
/// `matmul` (all rank combinations) and `matmul_t_scaled` stay bitwise
/// stable between 1 and 8 threads, and `matmul_nt_scaled(b, 1.0)` /
/// `matmul_tn` match the `transpose()`-based chains they replaced.
#[test]
fn tape_grad_matmuls_are_thread_invariant() {
    let grads = |threads: usize, seed: u64| {
        pool::with_threads(threads, || {
            let mut rng = Rng::new(seed);
            let tape = Tape::new();
            let x2 = tape.leaf(Tensor::from_fn([60, 20], |_| rng.normal()));
            let w = tape.leaf(Tensor::from_fn([20, 48], |_| rng.normal()));
            let x3 = tape.leaf(Tensor::from_fn([4, 30, 48], |_| rng.normal()));
            let w2 = tape.leaf(Tensor::from_fn([48, 20], |_| rng.normal()));
            let b3 = tape.leaf(Tensor::from_fn([4, 20, 9], |_| rng.normal()));
            let q = tape.leaf(Tensor::from_fn([4, 30, 16], |_| rng.normal()));
            let kk = tape.leaf(Tensor::from_fn([4, 30, 16], |_| rng.normal()));

            let h = x2.matmul(&w); // (2,2)
            let h3 = x3.matmul(&w2); // (3,2)
            let hb = h3.matmul(&b3); // (3,3)
            let scores = q.matmul_t_scaled(&kk, 0.25); // MatmulTScale
            let loss = h
                .square()
                .mean_all()
                .add(&hb.square().mean_all())
                .add(&scores.square().mean_all());
            loss.backward();
            let mut out = vec![loss.value().item()];
            for v in [&x2, &w, &x3, &w2, &b3, &q, &kk] {
                out.extend_from_slice(v.grad().data());
            }
            out
        })
    };
    for seed in 0..4u64 {
        let g1 = grads(1, seed);
        let g8 = grads(8, seed);
        bits_eq(&format!("tape grads seed {seed}"), &g1, &g8);
    }

    // nt(scale=1) and tn vs the transpose chains, including non-finite
    // values (x * 1.0 must stay a bitwise identity).
    let mut rng = Rng::new(7);
    let mut a = Tensor::from_fn([10, 6], |_| rng.normal());
    a.data_mut()[3] = f64::NAN;
    a.data_mut()[8] = f64::INFINITY;
    a.data_mut()[11] = -0.0;
    let b = Tensor::from_fn([9, 6], |_| rng.normal());
    bits_eq(
        "nt scale=1 vs transpose chain",
        a.matmul_nt_scaled(&b, 1.0).data(),
        a.matmul(&b.transpose()).data(),
    );
    let g = Tensor::from_fn([10, 9], |_| rng.normal());
    bits_eq(
        "tn vs transpose chain",
        a.matmul_tn(&g).data(),
        a.transpose().matmul(&g).data(),
    );
}

#!/usr/bin/env bash
# Full offline verification: build, test, lint. This is the gate every
# change must pass; it runs with the network forbidden to prove the
# workspace has zero external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release (offline)"
cargo build --release --workspace

echo "==> cargo test (offline)"
cargo test --workspace -q

echo "==> cargo clippy -D warnings (all targets)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> determinism across thread counts (TRANAD_THREADS=1 vs 8)"
TRANAD_THREADS=1 cargo test --release -q -p tranad --test determinism
TRANAD_THREADS=8 cargo test --release -q -p tranad --test determinism

echo "==> taped vs tape-free inference parity (bitwise; TRANAD_THREADS=1 vs 8)"
TRANAD_THREADS=1 cargo test --release -q -p tranad --test infer_parity
TRANAD_THREADS=8 cargo test --release -q -p tranad --test infer_parity
TRANAD_THREADS=8 cargo test --release -q -p tranad-baselines --test infer_parity

echo "==> serve kill-and-resume smoke (bitwise verdict equality, 1 and 8 threads)"
TRANAD_THREADS=1 cargo run --release -q -p tranad-serve --bin serve-smoke
TRANAD_THREADS=8 cargo run --release -q -p tranad-serve --bin serve-smoke

echo "==> cross-stream batched vs per-stream serving parity (bitwise; TRANAD_THREADS=1 vs 8)"
TRANAD_THREADS=1 cargo test --release -q -p tranad-serve --test batch_parity
TRANAD_THREADS=8 cargo test --release -q -p tranad-serve --test batch_parity

echo "==> tiled-kernel parity vs reference kernels (bitwise; TRANAD_THREADS=1 vs 8)"
TRANAD_THREADS=1 cargo test --release -q -p tranad-tensor --test kernel_parity
TRANAD_THREADS=8 cargo test --release -q -p tranad-tensor --test kernel_parity

echo "==> kernel throughput gate (tiled >= 1.3x reference on the training shape)"
cargo run --release -q -p tranad-bench --bin bench-kernels -- \
  --out results/kernel_throughput.json --bench-out BENCH_kernels.json --min-speedup 1.3

echo "==> observability smoke (exporter endpoints over a live engine)"
cargo run --release -q -p tranad-bench --bin obs-smoke

echo "==> batched serving throughput gate (>= 1.5x per-stream; exporter overhead < 5% while scraped)"
TRANAD_THREADS=1 cargo run --release -q -p tranad-bench --bin bench-serve -- \
  --out results/serve_throughput.json --min-speedup 1.5 --max-obs-overhead 0.05

echo "==> trace smoke-run (TRANAD_TRACE JSONL well-formedness)"
TRACE_TMP="$(mktemp /tmp/tranad_trace.XXXXXX.jsonl)"
TRANAD_TRACE="$TRACE_TMP" cargo run --release -q -p tranad-bench --bin trace-smoke

echo "==> trace-report artifacts + perf-budget gate on the smoke trace"
REPORT_TMP="$(mktemp -d /tmp/tranad_trace_report.XXXXXX)"
cargo run --release -q -p tranad-bench --bin trace-report -- "$TRACE_TMP" \
  --table "$REPORT_TMP/report.txt" \
  --chrome "$REPORT_TMP/trace.chrome.json" \
  --flamegraph "$REPORT_TMP/flame.svg" \
  --check results/perf_budget.json
test -s "$REPORT_TMP/report.txt"
test -s "$REPORT_TMP/trace.chrome.json"
test -s "$REPORT_TMP/flame.svg"
rm -rf "$REPORT_TMP" "$TRACE_TMP"

echo "==> allocation budgets (count-alloc; training step + online push + batched serve, results/alloc_budget.json)"
cargo run --release -q -p tranad-bench --features count-alloc --bin bench-alloc

echo "==> verify OK"

#!/usr/bin/env bash
# Full offline verification: build, test, lint. This is the gate every
# change must pass; it runs with the network forbidden to prove the
# workspace has zero external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release (offline)"
cargo build --release --workspace

echo "==> cargo test (offline)"
cargo test --workspace -q

echo "==> cargo clippy -D warnings (all targets)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> verify OK"

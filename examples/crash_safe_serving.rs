//! Crash-safe serving: train once, then serve two telemetry streams through
//! the cross-stream-batching [`tranad_serve::Engine`] with periodic
//! checkpoints, "crash" the service mid-stream, and resume from the latest
//! checkpoint — the resumed engine picks up exactly where the checkpoint
//! says it stopped and keeps flagging anomalies.
//!
//! Run with: `cargo run --release --example crash_safe_serving`

use tranad::{train, TrainedTranad, TranadConfig};
use tranad_data::TimeSeries;
use tranad_serve::{Engine, EngineConfig, PushOutcome};

/// One datapoint of a stream — a pure function of (stream, t), so the
/// producer can regenerate any suffix after a crash.
fn point(stream: usize, t: usize) -> Vec<f64> {
    let x = t as f64;
    let noise = ((x * 12.9898 + stream as f64 * 78.233).sin() * 43758.5453).fract() - 0.5;
    let mut p = vec![
        (x / 11.0 + stream as f64).sin() + 0.05 * noise,
        (x / 7.0).cos() * 0.5 + 0.04 * noise,
    ];
    // Stream 1's second sensor sticks at an extreme value from t = 700.
    if stream == 1 && t >= 700 {
        p[1] = 3.0;
    }
    p
}

fn main() {
    // Offline phase: train on clean telemetry and persist the model.
    let rows: Vec<f64> = (0..600).flat_map(|t| point(0, t)).collect();
    let series = TimeSeries::from_rows(rows, 600, 2);
    let config = TranadConfig::builder().epochs(4).build().expect("valid config");
    let (trained, report) = train(&series, config).expect("training");
    println!("trained in {:.2}s/epoch; saving model ...", report.seconds_per_epoch());
    let model_path = std::env::temp_dir().join("tranad_serve_demo_model.json");
    trained.save(&model_path).expect("save model");
    let ckpt_dir = std::env::temp_dir().join("tranad_serve_demo_ckpts");
    std::fs::remove_dir_all(&ckpt_dir).ok();

    // Serving phase: cross-stream batching engine over two streams,
    // checkpointing every 128 scored points into ckpt_dir. Producers intern
    // their stream name once and push through the copyable handle.
    let serve_config =
        EngineConfig::builder().checkpoint_every(128).build().expect("valid serve config");
    let streams = ["web", "db"];
    let loaded = TrainedTranad::load(&model_path).expect("load model");
    let mut engine = Engine::resume(loaded, serve_config, &ckpt_dir).expect("engine");
    let ids = streams.map(|name| engine.stream_id(name).expect("stream id"));
    for t in 600..800 {
        for (s, name) in streams.iter().enumerate() {
            match engine.push_id(ids[s], &point(s, t)).expect("push") {
                PushOutcome::Enqueued { .. } => {}
                PushOutcome::Shed { depth } => {
                    println!("t={t}: {name} shed a point (queue full at {depth})")
                }
            }
        }
        if t % 16 == 15 {
            engine.run_batch().expect("batch");
        }
    }
    println!(
        "crash at t=800 with {} points scored, state bounded at {} rows",
        engine.processed(),
        engine.state_rows()
    );
    drop(engine); // the crash: queued points and post-checkpoint progress are lost

    // Recovery: a fresh process resumes from the newest checkpoint and asks
    // the engine where each stream stopped, then re-feeds from there.
    let loaded = TrainedTranad::load(&model_path).expect("load model");
    let mut engine = Engine::resume(loaded, serve_config, &ckpt_dir).expect("resume");
    let resume_from: Vec<usize> = streams
        .iter()
        .map(|n| 600 + engine.stream_seen(n).expect("stream in checkpoint") as usize)
        .collect();
    println!("resumed: continuing streams from t={resume_from:?}");

    let mut alarms = 0;
    for t in resume_from[0].min(resume_from[1])..900 {
        for (s, name) in streams.iter().enumerate() {
            if t >= resume_from[s] {
                engine.push(name, &point(s, t)).expect("push");
            }
        }
        if t % 16 == 15 {
            for sv in engine.run_batch().expect("batch").verdicts {
                let name = engine.stream_name(sv.stream).expect("own stream");
                for (i, v) in sv.verdicts.iter().enumerate() {
                    if v.anomalous {
                        alarms += 1;
                        if alarms <= 3 {
                            let seq = sv.first_seq as usize + i;
                            println!("{name} seq={seq}: ANOMALY (dims {:?})", v.dim_labels);
                        }
                    }
                }
            }
        }
    }
    for (_, vs) in engine.drain().expect("drain") {
        alarms += vs.iter().filter(|v| v.anomalous).count();
    }
    println!("{alarms} alarm points raised after resume (fault active from t=700)");
    assert!(alarms >= 50, "the stuck sensor must be flagged across the crash");
    std::fs::remove_file(&model_path).ok();
    std::fs::remove_dir_all(&ckpt_dir).ok();
    println!("ok");
}

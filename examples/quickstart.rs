//! Quickstart: train TranAD on a synthetic multivariate series, inject an
//! anomaly into a test copy, and detect it with POT thresholding.
//!
//! Run with: `cargo run --release --example quickstart`

use tranad::{train, PotConfig, TranadConfig};
use tranad_data::{SignalRng, TimeSeries};
use tranad_metrics::evaluate;

fn main() {
    // 1. Build a two-dimensional training series: correlated sines + noise.
    let mut rng = SignalRng::new(7);
    let len = 800;
    let col_a: Vec<f64> = (0..len)
        .map(|t| (t as f64 / 12.0).sin() + 0.05 * rng.normal())
        .collect();
    let col_b: Vec<f64> = col_a.iter().map(|&v| 0.5 * v + 0.04 * rng.normal()).collect();
    let train_series = TimeSeries::from_columns(&[col_a, col_b]);

    // 2. Train TranAD (paper defaults, shortened for the example). The
    //    builder validates every field, so a typo'd config fails here
    //    instead of deep inside training.
    let config = TranadConfig::builder().epochs(5).build().expect("valid config");
    println!(
        "training TranAD on {} timestamps x {} dims ...",
        train_series.len(),
        train_series.dims()
    );
    let (detector, report) = train(&train_series, config).expect("training");
    println!(
        "trained {} epochs, {:.2}s/epoch, final val loss {:.6}",
        report.epochs_run,
        report.seconds_per_epoch(),
        report.val_losses.last().copied().unwrap_or(f64::NAN)
    );

    // 3. Corrupt a copy of the series: a level shift in dimension 1.
    let mut test = train_series.clone();
    let mut truth = vec![false; test.len()];
    for (t, flag) in truth.iter_mut().enumerate().take(420).skip(400) {
        let v = test.get(t, 1);
        test.set(t, 1, v + 2.0);
        *flag = true;
    }

    // 4. Detect (Algorithm 2: two-phase inference + POT thresholds).
    let detection = detector.detect(&test, PotConfig::default()).expect("detection");
    let metrics = evaluate(&detection.aggregate, &detection.labels, &truth);
    println!(
        "detection: precision {:.3}, recall {:.3}, F1 {:.3}, AUC {:.3}",
        metrics.precision, metrics.recall, metrics.f1, metrics.auc
    );

    // 5. Diagnosis: which dimension misbehaved?
    let hits_dim1 = (400..420).filter(|&t| detection.dim_labels[t][1]).count();
    let hits_dim0 = (400..420).filter(|&t| detection.dim_labels[t][0]).count();
    println!(
        "root cause: dim 1 flagged at {hits_dim1}/20 anomalous steps, dim 0 at {hits_dim0}/20"
    );
    assert!(metrics.f1 > 0.5, "expected the injected anomaly to be found");
    println!("ok");
}

//! Industrial-control attack detection (the SWaT scenario): stuck
//! actuators and shifted process variables in a 51-sensor water-treatment
//! plant, with TranAD compared head-to-head against the USAD baseline on
//! the same data and decision procedure.
//!
//! Run with: `cargo run --release --example water_treatment`

use tranad::detect_from_scores;
use tranad_baselines::{usad::Usad, Detector, NeuralConfig, TranadDetector};
use tranad_data::{generate, DatasetKind, GenConfig};
use tranad_evt::PotConfig;
use tranad_metrics::evaluate;
use tranad_baselines::aggregate_scores;
use tranad_telemetry::Recorder;

fn main() {
    let gen = GenConfig { scale: 0.001, min_len: 700, seed: 33 };
    let ds = generate(DatasetKind::Swat, gen);
    println!(
        "SWaT-like dataset: train {}, test {}, {} sensors/actuators, {:.2}% attack windows",
        ds.train.len(),
        ds.test.len(),
        ds.dims(),
        ds.labels.anomaly_rate() * 100.0
    );
    let truth = ds.point_labels();
    let pot = PotConfig::with_low_quantile(0.01);

    let mut detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(TranadDetector::new(
            tranad::TranadConfig::builder().epochs(4).build().expect("valid config"),
        )),
        Box::new(Usad::new(
            NeuralConfig::builder().epochs(4).build().expect("valid config"),
        )),
    ];

    for det in detectors.iter_mut() {
        let fit = det.fit(&ds.train, &Recorder::disabled()).expect("training");
        let scores = det.score(&ds.test).expect("scoring");
        let labels = detect_from_scores(det.train_scores().expect("fitted"), &scores, pot)
            .expect("POT calibration")
            .labels;
        let m = evaluate(&aggregate_scores(&scores).expect("well-formed scores"), &labels, &truth);
        println!(
            "{:>8}: P {:.3} / R {:.3} / F1 {:.3} / AUC {:.3}  ({:.2}s/epoch)",
            det.name(),
            m.precision,
            m.recall,
            m.f1,
            m.auc,
            fit.seconds_per_epoch
        );
    }
    println!("ok");
}

//! Server-fleet monitoring (the SMD scenario of the paper's intro): detect
//! *and diagnose* mild anomalies in a 38-metric machine trace, comparing
//! TranAD's POT labels against ground truth and ranking root-cause
//! dimensions with HitRate/NDCG.
//!
//! Run with: `cargo run --release --example server_monitoring`

use tranad::{train, PotConfig, TranadConfig};
use tranad_data::{generate, DatasetKind, GenConfig};
use tranad_metrics::{diagnose, evaluate};

fn main() {
    // SMD-like synthetic data: bursty CPU/request channels, random-walk
    // memory channels, 38 dims, mild anomalies (§4.3: "anomalous data is
    // not very far from normal data").
    let gen = GenConfig { scale: 0.002, min_len: 800, seed: 21 };
    let ds = generate(DatasetKind::Smd, gen);
    println!(
        "SMD-like dataset: train {}, test {}, {} dims, {:.2}% anomalous",
        ds.train.len(),
        ds.test.len(),
        ds.dims(),
        ds.labels.anomaly_rate() * 100.0
    );

    let config = TranadConfig::builder().epochs(5).build().expect("valid config");
    let (detector, report) = train(&ds.train, config).expect("training");
    println!(
        "trained in {:.2}s/epoch over {} epochs",
        report.seconds_per_epoch(),
        report.epochs_run
    );

    // Detection with the paper's POT settings for SMD.
    let pot = PotConfig::with_low_quantile(0.01);
    let detection = detector.detect(&ds.test, pot).expect("detection");
    let truth = ds.point_labels();
    let metrics = evaluate(&detection.aggregate, &detection.labels, &truth);
    println!(
        "detection: P {:.3} / R {:.3} / F1 {:.3} / AUC {:.3}",
        metrics.precision, metrics.recall, metrics.f1, metrics.auc
    );

    // Diagnosis: rank dimensions by anomaly score at each anomalous step.
    let truth_dims: Vec<Vec<bool>> =
        (0..ds.labels.len()).map(|t| ds.labels.dim_labels(t)).collect();
    let diag = diagnose(&detection.scores, &truth_dims);
    println!(
        "diagnosis: HitRate@100% {:.3}, HitRate@150% {:.3}, NDCG@100% {:.3}, NDCG@150% {:.3}",
        diag.hit100, diag.hit150, diag.ndcg100, diag.ndcg150
    );

    // Ops-style report: the top offending dimension of the worst incident.
    if let Some(worst_t) = (0..detection.scores.len())
        .filter(|&t| truth[t])
        .max_by(|&a, &b| {
            detection.aggregate[a]
                .partial_cmp(&detection.aggregate[b])
                .unwrap()
        })
    {
        let row = &detection.scores[worst_t];
        let top_dim = (0..row.len())
            .max_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap())
            .unwrap();
        println!(
            "worst incident at t={worst_t}: suspected root cause metric #{top_dim} \
             (score {:.4}, ground truth anomalous: {})",
            row[top_dim],
            ds.labels.at(worst_t, top_dim)
        );
    }
    println!("ok");
}

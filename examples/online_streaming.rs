//! Streaming deployment: train once, save the model to disk, reload it in a
//! "service", and feed datapoints one at a time through the online detector
//! (the paper's Algorithm 2 run in its intended online mode).
//!
//! Run with: `cargo run --release --example online_streaming`

use tranad::{train, OnlineDetector, PotConfig, TrainedTranad, TranadConfig};
use tranad_data::{SignalRng, TimeSeries};

fn main() {
    // Offline phase: train on clean telemetry and persist the model.
    let mut rng = SignalRng::new(99);
    let make_point = |t: usize, rng: &mut SignalRng| -> Vec<f64> {
        vec![
            (t as f64 / 11.0).sin() + 0.05 * rng.normal(),
            (t as f64 / 7.0).cos() * 0.5 + 0.04 * rng.normal(),
        ]
    };
    let train_rows: Vec<Vec<f64>> = (0..600).map(|t| make_point(t, &mut rng)).collect();
    let series = TimeSeries::from_rows(
        train_rows.iter().flatten().copied().collect(),
        train_rows.len(),
        2,
    );
    let config = TranadConfig::builder().epochs(4).build().expect("valid config");
    let (trained, report) = train(&series, config).expect("training");
    println!(
        "trained in {:.2}s/epoch; saving model ...",
        report.seconds_per_epoch()
    );
    let path = std::env::temp_dir().join("tranad_online_demo.json");
    trained.save(&path).expect("save model");

    // Online phase: a fresh process would load the model and stream.
    let loaded = TrainedTranad::load(&path).expect("load model");
    let mut detector =
        OnlineDetector::new(&loaded, PotConfig::default()).expect("POT calibration");

    let mut alarms = 0;
    for t in 600..900 {
        let mut point = make_point(t, &mut rng);
        // A fault develops at t = 800: sensor 1 sticks at an extreme value.
        if t >= 800 {
            point[1] = 3.0;
        }
        let verdict = detector.push(&point).expect("streaming point");
        if verdict.anomalous {
            alarms += 1;
            if alarms <= 3 {
                println!(
                    "t={t}: ANOMALY (scores {:.4} / {:.4}, dims {:?})",
                    verdict.scores[0], verdict.scores[1], verdict.dim_labels
                );
            }
        }
    }
    println!("{alarms} alarm points raised (fault active for 100 steps)");
    assert!(alarms >= 50, "the stuck sensor must be flagged");
    std::fs::remove_file(&path).ok();
    println!("ok");
}

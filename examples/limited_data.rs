//! Few-shot training (the paper's Table 3 / MAML claim): train TranAD with
//! and without meta-learning on only 20 % of the training data and compare
//! detection quality — the gap is the MAML contribution.
//!
//! Run with: `cargo run --release --example limited_data`

use tranad::{train, Ablation, PotConfig, TranadConfig};
use tranad_data::{generate, random_subsequence, DatasetKind, GenConfig};
use tranad_metrics::evaluate;

fn main() {
    let gen = GenConfig { scale: 0.003, min_len: 900, seed: 55 };
    let ds = generate(DatasetKind::Msds, gen);
    let subset = random_subsequence(&ds.train, 0.2, 3);
    println!(
        "MSDS-like dataset; training on a random 20% subsequence \
         ({} of {} timestamps)",
        subset.len(),
        ds.train.len()
    );
    let truth = ds.point_labels();
    let pot = PotConfig::with_low_quantile(0.01);
    let base = TranadConfig::builder().epochs(6).build().expect("valid config");

    for ablation in [Ablation::Full, Ablation::NoMaml] {
        let config = ablation.apply(base);
        let (detector, report) = train(&subset, config).expect("training");
        let detection = detector.detect(&ds.test, pot).expect("detection");
        let m = evaluate(&detection.aggregate, &detection.labels, &truth);
        println!(
            "{:>24}: F1* {:.3} / AUC* {:.3}  ({} epochs, {:.2}s/epoch)",
            ablation.name(),
            m.f1,
            m.auc,
            report.epochs_run,
            report.seconds_per_epoch()
        );
    }
    println!("ok");
}

//! End-to-end integration tests: generate a dataset, train TranAD, detect,
//! diagnose, and check the whole pipeline against ground truth.

use tranad::{train, Ablation, PotConfig, TranadConfig};
use tranad_data::{generate, DatasetKind, GenConfig, SignalRng, TimeSeries};
use tranad_metrics::{diagnose, evaluate, roc_auc};

fn test_config() -> TranadConfig {
    TranadConfig {
        epochs: 4,
        window: 8,
        context: 16,
        ff_hidden: 24,
        dropout: 0.0,
        patience: 10,
        ..TranadConfig::default()
    }
}

fn small_gen(seed: u64) -> GenConfig {
    GenConfig { scale: 0.001, min_len: 600, seed }
}

#[test]
fn tranad_detects_on_nab_like_data() {
    let ds = generate(DatasetKind::Nab, small_gen(1));
    let (detector, report) = train(&ds.train, test_config()).unwrap();
    assert!(report.epochs_run >= 2);
    let detection = detector.detect(&ds.test, PotConfig::with_low_quantile(0.02)).unwrap();
    let truth = ds.point_labels();
    let m = evaluate(&detection.aggregate, &detection.labels, &truth);
    assert!(m.auc > 0.75, "AUC too low: {}", m.auc);
    assert!(m.f1 > 0.5, "F1 too low: {}", m.f1);
}

#[test]
fn tranad_beats_random_scorer_on_msds() {
    let ds = generate(DatasetKind::Msds, small_gen(2));
    let (detector, _) = train(&ds.train, test_config()).unwrap();
    let detection = detector.detect(&ds.test, PotConfig::with_low_quantile(0.01)).unwrap();
    let truth = ds.point_labels();
    let model_auc = roc_auc(&detection.aggregate, &truth);
    let mut rng = SignalRng::new(3);
    let random_scores: Vec<f64> = (0..truth.len()).map(|_| rng.uniform(0.0, 1.0)).collect();
    let random_auc = roc_auc(&random_scores, &truth);
    assert!(
        model_auc > random_auc + 0.2,
        "model {model_auc} vs random {random_auc}"
    );
}

#[test]
fn diagnosis_localizes_injected_dimension() {
    // Hand-built series: only dimension 2 of 4 carries the anomaly.
    let mut rng = SignalRng::new(4);
    let cols: Vec<Vec<f64>> = (0..4)
        .map(|d| {
            (0..700)
                .map(|t| (t as f64 / (10.0 + d as f64)).sin() + 0.05 * rng.normal())
                .collect()
        })
        .collect();
    let train_series = TimeSeries::from_columns(&cols);
    let mut test = train_series.clone();
    for t in 350..365 {
        let v = test.get(t, 2);
        test.set(t, 2, v + 2.5);
    }
    let (detector, _) = train(&train_series, test_config()).unwrap();
    let detection = detector.detect(&test, PotConfig::default()).unwrap();
    // The anomalous dimension must dominate the per-dimension scores.
    let mut dim_totals = vec![0.0; 4];
    for t in 350..365 {
        for (d, total) in dim_totals.iter_mut().enumerate() {
            *total += detection.scores[t][d];
        }
    }
    let top = (0..4)
        .max_by(|&a, &b| dim_totals[a].partial_cmp(&dim_totals[b]).unwrap())
        .unwrap();
    assert_eq!(top, 2, "dimension scores: {dim_totals:?}");

    // And the diagnosis metrics must reflect it.
    let truth_dims: Vec<Vec<bool>> = (0..test.len())
        .map(|t| (0..4).map(|d| d == 2 && (350..365).contains(&t)).collect())
        .collect();
    let diag = diagnose(&detection.scores, &truth_dims);
    // The dominant-dimension assertion above is the strong check; HitRate
    // additionally requires the injected dimension to rank first at every
    // anomalous timestamp individually, which is noisier.
    assert!(diag.hit100 > 0.4, "HitRate@100% {}", diag.hit100);
}

#[test]
fn ablations_degrade_or_match_the_full_model() {
    // On an adversarial-sensitive trace (mild anomalies), the full model
    // should be at least as good as the average ablated variant (§5.1).
    let ds = generate(DatasetKind::Smd, small_gen(5));
    let truth = ds.point_labels();
    let mut scores = Vec::new();
    for ablation in Ablation::all() {
        let config = ablation.apply(test_config());
        let (detector, _) = train(&ds.train, config).unwrap();
        let detection = detector.detect(&ds.test, PotConfig::with_low_quantile(0.01)).unwrap();
        let m = evaluate(&detection.aggregate, &detection.labels, &truth);
        scores.push((ablation.name(), m.f1));
    }
    let full = scores[0].1;
    let ablated_avg: f64 =
        scores[1..].iter().map(|(_, f1)| f1).sum::<f64>() / (scores.len() - 1) as f64;
    assert!(
        full + 0.1 >= ablated_avg,
        "full model {full} much worse than ablation average {ablated_avg}: {scores:?}"
    );
}

#[test]
fn detection_is_deterministic_across_runs() {
    let ds = generate(DatasetKind::Ucr, small_gen(6));
    let run = || {
        let (detector, _) = train(&ds.train, test_config()).unwrap();
        detector
            .detect(&ds.test, PotConfig::default())
            .unwrap()
            .aggregate
    };
    assert_eq!(run(), run());
}

//! Property-based tests (proptest) over the core invariants the paper's
//! pipeline depends on: autograd correctness, preprocessing bounds,
//! thresholding monotonicity, and evaluation-protocol laws.

use proptest::prelude::*;
use tranad_data::{Normalizer, TimeSeries, Windows};
use tranad_evt::{Pot, PotConfig};
use tranad_metrics::{point_adjust, roc_auc, Confusion};
use tranad_tensor::check::check_gradients;
use tranad_tensor::{Tape, Tensor};

fn finite_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0..100.0f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- autograd ---------------------------------------------------------

    #[test]
    fn autograd_matches_numeric_gradient(values in prop::collection::vec(-2.0..2.0f64, 6)) {
        let x = Tensor::from_vec(values, [2, 3]);
        let checks = check_gradients(&[x], 1e-5, |_t, v| {
            v[0].sigmoid().mul(&v[0]).add_scalar(0.3).square().mean_all()
        });
        prop_assert!(checks[0].max_rel_diff < 1e-3 || checks[0].max_abs_diff < 1e-6);
    }

    #[test]
    fn softmax_rows_always_sum_to_one(values in prop::collection::vec(-50.0..50.0f64, 12)) {
        let x = Tensor::from_vec(values, [3, 4]);
        let s = x.softmax_last();
        for r in 0..3 {
            let sum: f64 = (0..4).map(|c| s.at(&[r, c])).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn matmul_grad_shapes_match_inputs(n in 1usize..4, k in 1usize..4, m in 1usize..4) {
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_fn([n, k], |i| (i as f64 * 0.31).sin()));
        let b = tape.leaf(Tensor::from_fn([k, m], |i| (i as f64 * 0.17).cos()));
        a.matmul(&b).sum_all().backward();
        let ga = a.grad();
        let gb = b.grad();
        prop_assert_eq!(ga.shape().dims(), &[n, k]);
        prop_assert_eq!(gb.shape().dims(), &[k, m]);
    }

    // ---- preprocessing -----------------------------------------------------

    #[test]
    fn normalizer_maps_training_data_into_unit_band(values in finite_vec(30)) {
        let series = TimeSeries::from_columns(&[values]);
        let norm = Normalizer::fit(&series);
        let out = norm.transform(&series);
        prop_assert!(out.data().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn windows_tail_equals_series_row(values in finite_vec(40), k in 1usize..12) {
        let series = TimeSeries::from_columns(&[values.clone()]);
        let windows = Windows::new(series, k);
        for t in 0..values.len() {
            let w = windows.window(t);
            // The final row of window t is always x_t.
            prop_assert_eq!(w.at(&[k - 1, 0]), values[t]);
        }
    }

    #[test]
    fn window_batch_is_concatenation(values in finite_vec(25)) {
        let series = TimeSeries::from_columns(&[values]);
        let windows = Windows::new(series, 5);
        let batch = windows.batch(&[3, 17]);
        let w3 = windows.window(3);
        let w17 = windows.window(17);
        prop_assert_eq!(&batch.data()[..5], w3.data());
        prop_assert_eq!(&batch.data()[5..], w17.data());
    }

    // ---- thresholding ------------------------------------------------------

    #[test]
    fn pot_threshold_monotone_in_risk(seed in 0u64..50) {
        let mut rng = tranad_data::SignalRng::new(seed);
        let scores: Vec<f64> = (0..3000).map(|_| rng.normal().abs()).collect();
        let strict = Pot::fit(&scores, PotConfig { q: 1e-5, level: 0.05 }).threshold;
        let loose = Pot::fit(&scores, PotConfig { q: 1e-2, level: 0.05 }).threshold;
        prop_assert!(strict >= loose, "strict {strict} < loose {loose}");
    }

    #[test]
    fn pot_flags_nothing_below_initial_threshold(seed in 0u64..50) {
        let mut rng = tranad_data::SignalRng::new(seed);
        let scores: Vec<f64> = (0..2000).map(|_| rng.uniform(0.0, 1.0)).collect();
        let pot = Pot::fit(&scores, PotConfig { q: 1e-4, level: 0.05 });
        let below: Vec<f64> = scores.iter().cloned().filter(|&s| s < pot.initial_threshold).collect();
        prop_assert!(pot.label(&below).iter().all(|&b| !b));
    }

    // ---- evaluation protocol -----------------------------------------------

    #[test]
    fn point_adjust_never_removes_predictions(
        pred in prop::collection::vec(any::<bool>(), 30),
        truth in prop::collection::vec(any::<bool>(), 30),
    ) {
        let adjusted = point_adjust(&pred, &truth);
        for (p, a) in pred.iter().zip(&adjusted) {
            prop_assert!(!p | a, "adjustment removed a prediction");
        }
    }

    #[test]
    fn point_adjust_f1_at_least_raw_f1(
        pred in prop::collection::vec(any::<bool>(), 40),
        truth in prop::collection::vec(any::<bool>(), 40),
    ) {
        let raw = Confusion::from_labels(&pred, &truth).f1();
        let adj = Confusion::from_labels(&point_adjust(&pred, &truth), &truth).f1();
        prop_assert!(adj + 1e-12 >= raw, "adjusted {adj} < raw {raw}");
    }

    #[test]
    fn auc_is_invariant_to_monotone_transforms(
        scores in prop::collection::vec(0.0..1.0f64, 20),
        truth in prop::collection::vec(any::<bool>(), 20),
    ) {
        let a = roc_auc(&scores, &truth);
        let transformed: Vec<f64> = scores.iter().map(|&s| (s * 3.0).exp()).collect();
        let b = roc_auc(&transformed, &truth);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn auc_flips_under_negation(
        scores in prop::collection::vec(0.0..1.0f64, 20),
        truth in prop::collection::vec(any::<bool>(), 20),
    ) {
        // Break ties so negation is exact.
        let scores: Vec<f64> = scores.iter().enumerate().map(|(i, &s)| s + i as f64 * 1e-9).collect();
        let a = roc_auc(&scores, &truth);
        let negated: Vec<f64> = scores.iter().map(|&s| -s).collect();
        let b = roc_auc(&negated, &truth);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
    }
}

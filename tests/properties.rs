//! Property-based tests over the core invariants the paper's pipeline
//! depends on: autograd correctness, preprocessing bounds, thresholding
//! monotonicity, and evaluation-protocol laws.
//!
//! Cases are generated with the workspace's own seeded [`Rng`] (no
//! `proptest` dependency): each property runs over dozens of random
//! inputs, and assertion messages carry the case number / seed.

use tranad_data::{Normalizer, TimeSeries, Windows};
use tranad_evt::{Pot, PotConfig};
use tranad_metrics::{point_adjust, roc_auc, Confusion};
use tranad_tensor::check::check_gradients;
use tranad_tensor::{Rng, Tape, Tensor};

const CASES: u64 = 64;

fn random_vec(rng: &mut Rng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.range_f64(lo, hi)).collect()
}

fn random_bools(rng: &mut Rng, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.chance(0.5)).collect()
}

// ---- autograd ---------------------------------------------------------

#[test]
fn autograd_matches_numeric_gradient() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let x = Tensor::from_vec(random_vec(&mut rng, 6, -2.0, 2.0), [2, 3]);
        let checks = check_gradients(&[x], 1e-5, |_t, v| {
            v[0].sigmoid().mul(&v[0]).add_scalar(0.3).square().mean_all()
        });
        assert!(
            checks[0].max_rel_diff < 1e-3 || checks[0].max_abs_diff < 1e-6,
            "case {case}"
        );
    }
}

#[test]
fn softmax_rows_always_sum_to_one() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let x = Tensor::from_vec(random_vec(&mut rng, 12, -50.0, 50.0), [3, 4]);
        let s = x.softmax_last();
        for r in 0..3 {
            let sum: f64 = (0..4).map(|c| s.at(&[r, c])).sum();
            assert!((sum - 1.0).abs() < 1e-9, "case {case}: row {r} sums to {sum}");
        }
    }
}

#[test]
fn matmul_grad_shapes_match_inputs() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let (n, k, m) = (
            rng.range_usize(1, 4),
            rng.range_usize(1, 4),
            rng.range_usize(1, 4),
        );
        let tape = Tape::new();
        let a = tape.leaf(Tensor::from_fn([n, k], |i| (i as f64 * 0.31).sin()));
        let b = tape.leaf(Tensor::from_fn([k, m], |i| (i as f64 * 0.17).cos()));
        a.matmul(&b).sum_all().backward();
        assert_eq!(a.grad().shape().dims(), &[n, k], "case {case}");
        assert_eq!(b.grad().shape().dims(), &[k, m], "case {case}");
    }
}

// ---- preprocessing -----------------------------------------------------

#[test]
fn normalizer_maps_training_data_into_unit_band() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let series = TimeSeries::from_columns(&[random_vec(&mut rng, 30, -100.0, 100.0)]);
        let norm = Normalizer::fit(&series);
        let out = norm.transform(&series);
        assert!(
            out.data().iter().all(|&v| (0.0..1.0).contains(&v)),
            "case {case}"
        );
    }
}

#[test]
fn windows_tail_equals_series_row() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let values = random_vec(&mut rng, 40, -100.0, 100.0);
        let k = rng.range_usize(1, 12);
        let series = TimeSeries::from_columns(std::slice::from_ref(&values));
        let windows = Windows::new(series, k);
        for (t, &v) in values.iter().enumerate() {
            let w = windows.window(t);
            // The final row of window t is always x_t.
            assert_eq!(w.at(&[k - 1, 0]), v, "case {case}: t {t}");
        }
    }
}

#[test]
fn window_batch_is_concatenation() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let series = TimeSeries::from_columns(&[random_vec(&mut rng, 25, -100.0, 100.0)]);
        let windows = Windows::new(series, 5);
        let batch = windows.batch(&[3, 17]);
        let w3 = windows.window(3);
        let w17 = windows.window(17);
        assert_eq!(&batch.data()[..5], w3.data(), "case {case}");
        assert_eq!(&batch.data()[5..], w17.data(), "case {case}");
    }
}

// ---- thresholding ------------------------------------------------------

#[test]
fn pot_threshold_monotone_in_risk() {
    for seed in 0..50u64 {
        let mut rng = tranad_data::SignalRng::new(seed);
        let scores: Vec<f64> = (0..3000).map(|_| rng.normal().abs()).collect();
        let strict = Pot::fit(&scores, PotConfig { q: 1e-5, level: 0.05 }).threshold;
        let loose = Pot::fit(&scores, PotConfig { q: 1e-2, level: 0.05 }).threshold;
        assert!(strict >= loose, "seed {seed}: strict {strict} < loose {loose}");
    }
}

#[test]
fn pot_flags_nothing_below_initial_threshold() {
    for seed in 0..50u64 {
        let mut rng = tranad_data::SignalRng::new(seed);
        let scores: Vec<f64> = (0..2000).map(|_| rng.uniform(0.0, 1.0)).collect();
        let pot = Pot::fit(&scores, PotConfig { q: 1e-4, level: 0.05 });
        let below: Vec<f64> =
            scores.iter().cloned().filter(|&s| s < pot.initial_threshold).collect();
        assert!(pot.label(&below).iter().all(|&b| !b), "seed {seed}");
    }
}

// ---- evaluation protocol -----------------------------------------------

#[test]
fn point_adjust_never_removes_predictions() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let pred = random_bools(&mut rng, 30);
        let truth = random_bools(&mut rng, 30);
        let adjusted = point_adjust(&pred, &truth);
        for (p, a) in pred.iter().zip(&adjusted) {
            assert!(!p | a, "case {case}: adjustment removed a prediction");
        }
    }
}

#[test]
fn point_adjust_f1_at_least_raw_f1() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let pred = random_bools(&mut rng, 40);
        let truth = random_bools(&mut rng, 40);
        let raw = Confusion::from_labels(&pred, &truth).f1();
        let adj = Confusion::from_labels(&point_adjust(&pred, &truth), &truth).f1();
        assert!(adj + 1e-12 >= raw, "case {case}: adjusted {adj} < raw {raw}");
    }
}

#[test]
fn auc_is_invariant_to_monotone_transforms() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let scores = random_vec(&mut rng, 20, 0.0, 1.0);
        let truth = random_bools(&mut rng, 20);
        let a = roc_auc(&scores, &truth);
        let transformed: Vec<f64> = scores.iter().map(|&s| (s * 3.0).exp()).collect();
        let b = roc_auc(&transformed, &truth);
        assert!((a - b).abs() < 1e-9, "case {case}: {a} vs {b}");
    }
}

#[test]
fn auc_flips_under_negation() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        // Break ties so negation is exact.
        let scores: Vec<f64> = random_vec(&mut rng, 20, 0.0, 1.0)
            .iter()
            .enumerate()
            .map(|(i, &s)| s + i as f64 * 1e-9)
            .collect();
        let truth = random_bools(&mut rng, 20);
        let a = roc_auc(&scores, &truth);
        let negated: Vec<f64> = scores.iter().map(|&s| -s).collect();
        let b = roc_auc(&negated, &truth);
        assert!((a + b - 1.0).abs() < 1e-9, "case {case}: {a} + {b} != 1");
    }
}

//! Integration tests for the benchmark harness pipeline: method roster ×
//! dataset generation × POT decision procedure × metrics.

use tranad_bench::tables::{table1, table2, table7};
use tranad_bench::{HarnessConfig, Method};
use tranad_data::{DatasetKind, GenConfig};

fn tiny() -> HarnessConfig {
    let mut cfg = HarnessConfig::quick();
    cfg.gen = GenConfig { scale: 0.0005, min_len: 350, seed: 9 };
    cfg.neural.epochs = 2;
    cfg.tranad.epochs = 2;
    cfg.tranad.ff_hidden = 16;
    cfg
}

#[test]
fn table1_reports_paper_and_generated_stats() {
    let out = table1(&tiny());
    assert!(out.contains("WADI"));
    assert!(out.contains("1048571")); // paper's WADI train length
    assert!(out.contains("123"));
}

#[test]
fn harness_runs_fast_methods_on_one_dataset() {
    let cfg = tiny();
    let methods = [Method::Merlin, Method::Dagmm, Method::Usad, Method::Tranad];
    let rows = table2(&cfg, &[DatasetKind::Ucr], &methods, |_| {});
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert!(r.f1.is_finite() && (0.0..=1.0).contains(&r.f1), "{r:?}");
        assert!((0.0..=1.0).contains(&r.auc), "{r:?}");
        assert!(r.secs_per_epoch >= 0.0);
    }
    // A neural detector should comfortably beat chance AUC on the easy
    // UCR-like pulse data.
    let tranad_row = rows.iter().find(|r| r.method == "TranAD").unwrap();
    assert!(tranad_row.auc > 0.6, "TranAD AUC {}", tranad_row.auc);
}

#[test]
fn merlin_comparison_shape_holds() {
    // Table 7's claim: the optimized implementation is faster with nearly
    // identical scores.
    let rows = table7(&tiny(), &[DatasetKind::Ucr], |_| {});
    let f1 = rows.iter().find(|r| r.metric == "F1").unwrap();
    let time = rows.iter().find(|r| r.metric == "Time").unwrap();
    assert!(f1.deviation.abs() < 0.5, "F1 deviation {}", f1.deviation);
    assert!(
        time.deviation < 0.0,
        "optimized implementation must be faster, deviation {}",
        time.deviation
    );
}

#[test]
fn native_labels_override_pot() {
    use tranad_baselines::{lstm_ndt::LstmNdt, Detector, NeuralConfig};
    use tranad_telemetry::Recorder;
    use tranad_data::generate;
    let cfg = tiny();
    let ds = generate(DatasetKind::Nab, cfg.gen);
    let mut det = LstmNdt::new(NeuralConfig { epochs: 2, ..NeuralConfig::fast() });
    det.fit(&ds.train, &Recorder::disabled()).unwrap();
    // LSTM-NDT labels natively via NDT; the harness must honor that.
    assert!(det.native_labels(&ds.test).is_some());
    let r = tranad_bench::runner::evaluate_fitted(&det, &ds, 0.1).unwrap();
    assert!(r.f1.is_finite());
}
